(** Vectorized (DuckDB-style) executor: operator-at-a-time over full columns,
    materializing every intermediate relation. Scans, filters, join probes
    and aggregation are morsel-parallel over domains. *)

open Value
open Plan

type ctx = {
  catalog : Catalog.t;
  ctes : (string, Relation.t) Hashtbl.t;
  threads : int;
}

let relation_cols (r : Relation.t) = r.Relation.cols

(* ------------------------------------------------------------------ *)
(* Helpers                                                            *)
(* ------------------------------------------------------------------ *)

let take_rows (r : Relation.t) idx = Relation.take r idx

let filter_indices ~threads cols ~n pred =
  if threads <= 1 || n < 4096 then Eval.eval_filter cols ~n pred
  else begin
    let parts =
      Parallel.map_chunks ~threads n (fun start len ->
          (* evaluate predicate row-at-a-time per chunk *)
          let test = Eval.compile_pred cols pred in
          let out = ref [] and count = ref 0 in
          for row = start + len - 1 downto start do
            if test row then begin
              out := row :: !out;
              incr count
            end
          done;
          (!out, !count))
    in
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 parts in
    let idx = Array.make total 0 in
    let k = ref 0 in
    List.iter
      (fun (rows, _) ->
        List.iter
          (fun row ->
            idx.(!k) <- row;
            incr k)
          rows)
      parts;
    idx
  end

(* ------------------------------------------------------------------ *)
(* Sorting                                                            *)
(* ------------------------------------------------------------------ *)

let sort_indices (r : Relation.t) (keys : (int * bool) list) : int array =
  let n = Relation.n_rows r in
  let idx = Array.init n Fun.id in
  let comparators =
    List.map
      (fun (i, asc) ->
        let c = r.Relation.cols.(i) in
        let cmp =
          match c.Column.data with
          | Column.I a -> fun x y -> compare a.(x) a.(y)
          | Column.F a -> fun x y -> compare a.(x) a.(y)
          | Column.S a -> fun x y -> String.compare a.(x) a.(y)
          | Column.B a -> fun x y -> compare a.(x) a.(y)
        in
        let cmp =
          if Column.has_nulls c then fun x y ->
            (* nulls last *)
            let nx = Column.is_null c x and ny = Column.is_null c y in
            if nx && ny then 0
            else if nx then 1
            else if ny then -1
            else cmp x y
          else cmp
        in
        if asc then cmp else fun x y -> cmp y x)
      keys
  in
  let compare_rows x y =
    let rec go = function
      | [] -> compare x y (* stable tiebreak on original order *)
      | cmp :: rest ->
        let c = cmp x y in
        if c <> 0 then c else go rest
    in
    go comparators
  in
  Array.sort compare_rows idx;
  idx

(* ------------------------------------------------------------------ *)
(* Joins                                                              *)
(* ------------------------------------------------------------------ *)

(* Gather matching (left_row, right_row) pairs for an equi-join; residual is
   applied afterwards over the concatenated relation. *)
let hash_join_pairs ~threads (l : Relation.t) (r : Relation.t)
    (keys : (int * int) list) : (int array * int array) =
  let nl = Relation.n_rows l and nr = Relation.n_rows r in
  match keys with
  | [] ->
    (* cross join *)
    let li = Array.make (nl * nr) 0 and ri = Array.make (nl * nr) 0 in
    let k = ref 0 in
    for i = 0 to nl - 1 do
      for j = 0 to nr - 1 do
        li.(!k) <- i;
        ri.(!k) <- j;
        incr k
      done
    done;
    (li, ri)
  | keys ->
    let rkeys = List.map snd keys and lkeys = List.map fst keys in
    let tbl =
      Hash_util.build_table ~null_as_key:false (relation_cols r) rkeys ~n:nr
    in
    let lkf = Hash_util.key_fn ~null_as_key:false (relation_cols l) lkeys in
    let probe start len =
      let lbuf = ref [] and rbuf = ref [] and count = ref 0 in
      for row = start + len - 1 downto start do
        match lkf row with
        | None -> ()
        | Some k -> (
          match Hashtbl.find_opt tbl k with
          | None -> ()
          | Some rows ->
            List.iter
              (fun rrow ->
                lbuf := row :: !lbuf;
                rbuf := rrow :: !rbuf;
                incr count)
              rows)
      done;
      (!lbuf, !rbuf, !count)
    in
    let parts = Parallel.map_chunks ~threads nl probe in
    let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 parts in
    let li = Array.make total 0 and ri = Array.make total 0 in
    let k = ref 0 in
    List.iter
      (fun (ls, rs, _) ->
        List.iter2
          (fun a b ->
            li.(!k) <- a;
            ri.(!k) <- b;
            incr k)
          ls rs)
      parts;
    (li, ri)

let concat_relations (l : Relation.t) (r : Relation.t) li ri : Relation.t =
  let lc = Array.map (fun c -> Column.take c li) l.Relation.cols in
  let rc = Array.map (fun c -> Column.take c ri) r.Relation.cols in
  { Relation.names = Array.append l.Relation.names r.Relation.names;
    cols = Array.append lc rc }

(* ------------------------------------------------------------------ *)
(* Executor                                                           *)
(* ------------------------------------------------------------------ *)

let rec run (ctx : ctx) (p : plan) : Relation.t =
  match p.node with
  | Scan name -> (
    match Hashtbl.find_opt ctx.ctes name with
    | Some r -> r
    | None -> (
      match Catalog.find_opt ctx.catalog name with
      | Some t -> t.Catalog.rel
      | None -> invalid_arg ("Exec: unknown relation " ^ name)))
  | PValues (schema, rows) ->
    let n = List.length rows in
    let cols =
      Array.mapi
        (fun i (_, ty) ->
          Column.of_values ty
            (Array.of_list (List.map (fun row -> List.nth row i) rows)))
        schema
    in
    { Relation.names = Array.map fst schema;
      cols = (if Array.length schema = 0 then [||] else cols) }
    |> fun r -> if Array.length schema = 0 then
        (* zero-column relation with [n] rows is modelled as one int col *)
        { Relation.names = [| "dummy" |];
          cols = [| Column.of_ints (Array.make n 0) |] }
      else r
  | Filter (sub, pred) ->
    let r = run ctx sub in
    let n = Relation.n_rows r in
    let idx = filter_indices ~threads:ctx.threads (relation_cols r) ~n pred in
    take_rows r idx
  | Project (sub, items) ->
    let r = run ctx sub in
    let n = Relation.n_rows r in
    let cols = relation_cols r in
    let eval_item (e, _) = Eval.eval_col cols ~n e in
    let out_cols =
      if ctx.threads > 1 && List.length items > 1 && n > 4096 then
        Parallel.map_list ~threads:ctx.threads
          (List.map (fun item () -> eval_item item) items)
      else List.map eval_item items
    in
    { Relation.names = Array.of_list (List.map snd items);
      cols = Array.of_list out_cols }
  | Join { kind; left; right; keys; residual } ->
    run_join ctx kind left right keys residual
  | SemiJoin { anti; left; right; keys; residual } ->
    run_semijoin ctx anti left right keys residual
  | Aggregate (sub, groups, specs) -> run_aggregate ctx p sub groups specs
  | Sort (sub, keys) ->
    let r = run ctx sub in
    take_rows r (sort_indices r keys)
  | LimitN (sub, n) ->
    let r = run ctx sub in
    let n = min n (Relation.n_rows r) in
    take_rows r (Array.init n Fun.id)
  | Distinct sub ->
    let r = run ctx sub in
    let n = Relation.n_rows r in
    let all_cols = List.init (Array.length r.Relation.cols) Fun.id in
    let kf = Hash_util.key_fn ~null_as_key:true (relation_cols r) all_cols in
    let seen = Hashtbl.create (max 16 n) in
    let keep = ref [] and count = ref 0 in
    for row = 0 to n - 1 do
      match kf row with
      | None -> ()
      | Some k ->
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          keep := row :: !keep;
          incr count
        end
    done;
    take_rows r (Array.of_list (List.rev !keep))
  | Window (sub, keys, _name) ->
    let r = run ctx sub in
    let n = Relation.n_rows r in
    let order = if keys = [] then Array.init n Fun.id else sort_indices r keys in
    let ranks = Array.make n 0 in
    Array.iteri (fun pos row -> ranks.(row) <- pos + 1) order;
    { Relation.names = Array.append r.Relation.names [| snd3 p |];
      cols = Array.append r.Relation.cols [| Column.of_ints ranks |] }

and snd3 (p : plan) =
  match p.node with Window (_, _, name) -> name | _ -> "id"

and run_join ctx kind left right keys residual =
  let l = run ctx left and r = run ctx right in
  let li, ri = hash_join_pairs ~threads:ctx.threads l r keys in
  (* Apply residual predicate to candidate pairs. *)
  let li, ri =
    match residual with
    | None -> (li, ri)
    | Some pred ->
      let cand = concat_relations l r li ri in
      let n = Relation.n_rows cand in
      let sel = Eval.eval_filter (relation_cols cand) ~n pred in
      (Array.map (fun k -> li.(k)) sel, Array.map (fun k -> ri.(k)) sel)
  in
  let nl = Relation.n_rows l and nr = Relation.n_rows r in
  match kind with
  | JInner -> concat_relations l r li ri
  | JLeft ->
    let matched = Array.make nl false in
    Array.iter (fun i -> matched.(i) <- true) li;
    let extra = ref [] in
    for i = nl - 1 downto 0 do
      if not matched.(i) then extra := i :: !extra
    done;
    let extra = Array.of_list !extra in
    let li = Array.append li extra in
    let ri = Array.append ri (Array.map (fun _ -> -1) extra) in
    concat_relations l r li ri
  | JRight ->
    let matched = Array.make nr false in
    Array.iter (fun i -> matched.(i) <- true) ri;
    let extra = ref [] in
    for i = nr - 1 downto 0 do
      if not matched.(i) then extra := i :: !extra
    done;
    let extra = Array.of_list !extra in
    let li = Array.append li (Array.map (fun _ -> -1) extra) in
    let ri = Array.append ri extra in
    concat_relations l r li ri
  | JFull ->
    let lmatched = Array.make nl false and rmatched = Array.make nr false in
    Array.iter (fun i -> lmatched.(i) <- true) li;
    Array.iter (fun i -> rmatched.(i) <- true) ri;
    let lextra = ref [] and rextra = ref [] in
    for i = nl - 1 downto 0 do
      if not lmatched.(i) then lextra := i :: !lextra
    done;
    for i = nr - 1 downto 0 do
      if not rmatched.(i) then rextra := i :: !rextra
    done;
    let lextra = Array.of_list !lextra and rextra = Array.of_list !rextra in
    let li =
      Array.concat [ li; lextra; Array.map (fun _ -> -1) rextra ]
    in
    let ri =
      Array.concat [ ri; Array.map (fun _ -> -1) lextra; rextra ]
    in
    concat_relations l r li ri

and run_semijoin ctx anti left right keys residual =
  let l = run ctx left and r = run ctx right in
  let nl = Relation.n_rows l and nr = Relation.n_rows r in
  let keep =
    match (keys, residual) with
    | [], None ->
      (* EXISTS over an uncorrelated subquery *)
      let nonempty = nr > 0 in
      Array.init nl (fun _ -> nonempty <> anti)
    | _ ->
      let rkeys = List.map snd keys and lkeys = List.map fst keys in
      let tbl =
        match keys with
        | [] -> None
        | _ ->
          Some
            (Hash_util.build_table ~null_as_key:false (relation_cols r) rkeys
               ~n:nr)
      in
      let lkf = Hash_util.key_fn ~null_as_key:false (relation_cols l) lkeys in
      let residual_check =
        match residual with
        | None -> fun _ _ -> true
        | Some pred ->
          (* Evaluate over left row ++ right row. *)
          let combined_cols =
            Array.append (relation_cols l)
              (Array.map
                 (fun (c : Column.t) -> c)
                 (relation_cols r))
          in
          ignore combined_cols;
          let nlc = Array.length l.Relation.cols in
          fun lrow rrow ->
            (* build a 1-row pair context lazily via boxed eval *)
            let get col =
              if col < nlc then Column.get l.Relation.cols.(col) lrow
              else Column.get r.Relation.cols.(col - nlc) rrow
            in
            let rec ev (e : pexpr) : Value.t =
              match e with
              | PCol i -> get i
              | PLit v -> v
              | PBin (op, a, b) -> Eval.apply_bin op (ev a) (ev b)
              | PNeg a -> (
                match ev a with
                | VInt i -> VInt (-i)
                | VFloat f -> VFloat (-.f)
                | _ -> VNull)
              | PNot a -> (
                match ev a with VBool b -> VBool (not b) | _ -> VBool false)
              | PCase (whens, els) ->
                let rec go = function
                  | [] -> (
                    match els with Some e -> ev e | None -> VNull)
                  | (c, v) :: rest -> (
                    match ev c with VBool true -> ev v | _ -> go rest)
                in
                go whens
              | PFunc (name, args) -> Eval.apply_func name (List.map ev args)
              | PLike (a, pat, neg) -> (
                match ev a with
                | VString s -> VBool (Eval.like_match pat s <> neg)
                | _ -> VBool false)
              | PInList (a, items, neg) ->
                let v = ev a in
                if Value.is_null v then VBool false
                else VBool (List.exists (Value.equal_values v) items <> neg)
              | PIsNull (a, neg) -> VBool (Value.is_null (ev a) <> neg)
              | PCast (a, ty) -> (
                match (ev a, ty) with
                | VNull, _ -> VNull
                | v, TInt -> VInt (Value.as_int v)
                | v, TFloat -> VFloat (Value.as_float v)
                | v, TString -> VString (Value.to_string v)
                | v, TBool -> VBool (Value.as_int v <> 0)
                | v, TDate -> VDate (Value.as_int v))
            in
            match ev pred with VBool b -> b | _ -> false
      in
      let probe lrow =
        let candidates =
          match tbl with
          | Some tbl -> (
            match lkf lrow with
            | None -> []
            | Some k -> (
              match Hashtbl.find_opt tbl k with Some rows -> rows | None -> []))
          | None -> List.init nr Fun.id
        in
        List.exists (fun rrow -> residual_check lrow rrow) candidates
      in
      Array.init nl (fun lrow -> probe lrow <> anti)
  in
  let count = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 keep in
  let idx = Array.make count 0 in
  let k = ref 0 in
  Array.iteri
    (fun i b ->
      if b then begin
        idx.(!k) <- i;
        incr k
      end)
    keep;
  take_rows l idx

and run_aggregate ctx (p : plan) sub groups specs =
  let r = run ctx sub in
  let n = Relation.n_rows r in
  let cols = relation_cols r in
  let has_distinct = List.exists (fun s -> s.distinct) specs in
  let specs_arr = Array.of_list specs in
  match groups with
  | [] ->
    (* Global aggregation: one output row even for empty input. *)
    let accs = Array.map Agg_util.create specs_arr in
    let partials =
      Parallel.map_chunks
        ~threads:(if has_distinct then 1 else ctx.threads)
        n
        (fun start len ->
          let local = Array.map Agg_util.create specs_arr in
          for row = start to start + len - 1 do
            Array.iteri
              (fun i spec -> Agg_util.update spec local.(i) cols row)
              specs_arr
          done;
          local)
    in
    List.iter
      (fun local ->
        Array.iteri (fun i spec -> Agg_util.merge spec accs.(i) local.(i)) specs_arr)
      partials;
    let out_vals = Array.mapi (fun i spec -> Agg_util.finish spec accs.(i)) specs_arr in
    { Relation.names = Array.map fst p.schema;
      cols =
        Array.mapi
          (fun i (_, ty) -> Column.of_values ty [| out_vals.(i) |])
          p.schema }
  | groups ->
    let kf = Hash_util.key_fn ~null_as_key:true cols groups in
    let run_range start len =
      let tbl : (Hash_util.key, int * Agg_util.acc array) Hashtbl.t =
        Hashtbl.create 1024
      in
      for row = start to start + len - 1 do
        match kf row with
        | None -> ()
        | Some k ->
          let _, accs =
            match Hashtbl.find_opt tbl k with
            | Some entry -> entry
            | None ->
              let entry = (row, Array.map Agg_util.create specs_arr) in
              Hashtbl.add tbl k entry;
              entry
          in
          Array.iteri
            (fun i spec -> Agg_util.update spec accs.(i) cols row)
            specs_arr
      done;
      tbl
    in
    let tbl =
      if ctx.threads <= 1 || has_distinct || n < 8192 then run_range 0 n
      else begin
        let partials = Parallel.map_chunks ~threads:ctx.threads n run_range in
        match partials with
        | [] -> Hashtbl.create 1
        | first :: rest ->
          List.iter
            (fun part ->
              Hashtbl.iter
                (fun k (row, accs) ->
                  match Hashtbl.find_opt first k with
                  | Some (_, main_accs) ->
                    Array.iteri
                      (fun i spec -> Agg_util.merge spec main_accs.(i) accs.(i))
                      specs_arr
                  | None -> Hashtbl.add first k (row, accs))
                part)
            rest;
          first
      end
    in
    let n_out = Hashtbl.length tbl in
    let n_groups = List.length groups in
    let group_cols = Array.of_list (List.map (fun g -> cols.(g)) groups) in
    let out = Array.make_matrix (n_groups + Array.length specs_arr) n_out VNull in
    let k = ref 0 in
    Hashtbl.iter
      (fun _ (row, accs) ->
        Array.iteri (fun g c -> out.(g).(!k) <- Column.get c row) group_cols;
        Array.iteri
          (fun i spec -> out.(n_groups + i).(!k) <- Agg_util.finish spec accs.(i))
          specs_arr;
        incr k)
      tbl;
    { Relation.names = Array.map fst p.schema;
      cols = Array.mapi (fun i (_, ty) -> Column.of_values ty out.(i)) p.schema }

(* ------------------------------------------------------------------ *)
(* Entry point                                                        *)
(* ------------------------------------------------------------------ *)

let run_query ?(threads = 1) (catalog : Catalog.t) (bq : bound_query) :
    Relation.t =
  let ctx = { catalog; ctes = Hashtbl.create 8; threads } in
  List.iter
    (fun (name, plan) ->
      let r = run ctx plan in
      (* apply CTE column renames from the plan schema *)
      let r = Relation.rename r (Array.map fst plan.schema) in
      Hashtbl.replace ctx.ctes name r)
    bq.ctes;
  run ctx bq.main
