(** Aggregate accumulators shared by the vectorized and compiled executors. *)

open Value

type acc = {
  mutable count : int; (* rows contributing (non-null for arg aggregates) *)
  mutable sumi : int;
  mutable sumf : float;
  mutable minv : Value.t;
  mutable maxv : Value.t;
  mutable seen : (string, unit) Hashtbl.t option; (* DISTINCT tracking *)
}

let create (spec : Plan.agg_spec) : acc =
  { count = 0; sumi = 0; sumf = 0.; minv = VNull; maxv = VNull;
    seen = (if spec.distinct then Some (Hashtbl.create 16) else None) }

let update (spec : Plan.agg_spec) (acc : acc) (cols : Column.t array) row =
  match spec.arg with
  | None -> acc.count <- acc.count + 1 (* count star *)
  | Some i ->
    let c = cols.(i) in
    if Column.is_null c row then ()
    else begin
      let proceed =
        match acc.seen with
        | None -> true
        | Some seen ->
          let k = Hash_util.pack_values [ Column.get c row ] in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end
      in
      if proceed then begin
        acc.count <- acc.count + 1;
        match spec.fn with
        | Sql_ast.Count | Sql_ast.CountStar -> ()
        | Sql_ast.Sum | Sql_ast.Avg -> (
          match c.Column.data with
          | Column.I a -> (
            acc.sumi <- acc.sumi + a.(row);
            match spec.fn with
            | Sql_ast.Avg -> acc.sumf <- acc.sumf +. float_of_int a.(row)
            | _ -> ())
          | _ -> acc.sumf <- acc.sumf +. Column.float_at c row)
        | Sql_ast.Min ->
          let v = Column.get c row in
          if Value.is_null acc.minv || Value.compare_values v acc.minv < 0 then
            acc.minv <- v
        | Sql_ast.Max ->
          let v = Column.get c row in
          if Value.is_null acc.maxv || Value.compare_values v acc.maxv > 0 then
            acc.maxv <- v
      end
    end

let merge (spec : Plan.agg_spec) (a : acc) (b : acc) =
  (match (a.seen, b.seen) with
  | Some sa, Some sb ->
    (* Distinct accumulators merged across partitions: recount overlaps. *)
    Hashtbl.iter
      (fun k () -> if not (Hashtbl.mem sa k) then Hashtbl.add sa k ())
      sb;
    a.count <- Hashtbl.length sa
  | _ ->
    a.count <- a.count + b.count;
    a.sumi <- a.sumi + b.sumi;
    a.sumf <- a.sumf +. b.sumf);
  (match spec.fn with
  | Sql_ast.Min ->
    if
      Value.is_null a.minv
      || ((not (Value.is_null b.minv)) && Value.compare_values b.minv a.minv < 0)
    then a.minv <- b.minv
  | Sql_ast.Max ->
    if
      Value.is_null a.maxv
      || ((not (Value.is_null b.maxv)) && Value.compare_values b.maxv a.maxv > 0)
    then a.maxv <- b.maxv
  | _ -> ())

let finish (spec : Plan.agg_spec) (acc : acc) : Value.t =
  match spec.fn with
  | Sql_ast.Count | Sql_ast.CountStar -> VInt acc.count
  | Sql_ast.Avg ->
    if acc.count = 0 then VNull else VFloat (acc.sumf /. float_of_int acc.count)
  | Sql_ast.Sum ->
    if acc.count = 0 then VNull
    else if spec.out_ty = TInt then VInt acc.sumi
    else VFloat acc.sumf
  | Sql_ast.Min -> acc.minv
  | Sql_ast.Max -> acc.maxv
