lib/sqldb/catalog.ml: Hashtbl List Relation
