lib/sqldb/hash_util.ml: Array Bitset Buffer Column Hashtbl List Value
