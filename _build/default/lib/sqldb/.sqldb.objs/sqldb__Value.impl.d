lib/sqldb/value.ml: Float Printf String
