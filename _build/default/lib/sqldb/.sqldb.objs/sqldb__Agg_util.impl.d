lib/sqldb/agg_util.ml: Array Column Hash_util Hashtbl Plan Sql_ast Value
