lib/sqldb/sql_print.ml: Buffer List Printf Sql_ast String Value
