lib/sqldb/plan.ml: Array Format List Option Sql_ast Value
