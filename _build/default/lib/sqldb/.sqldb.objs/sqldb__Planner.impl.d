lib/sqldb/planner.ml: Array Catalog Either Float Fun Hashtbl List Option Plan Printf Relation Sql_ast Sql_print String Value
