lib/sqldb/exec_vectorized.ml: Agg_util Array Catalog Column Eval Fun Hash_util Hashtbl List Parallel Plan Relation String Value
