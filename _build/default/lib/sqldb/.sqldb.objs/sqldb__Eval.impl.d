lib/sqldb/eval.ml: Array Bitset Column Float List Option Plan Printf Sql_ast String Value
