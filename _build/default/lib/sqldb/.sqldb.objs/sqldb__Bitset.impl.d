lib/sqldb/bitset.ml: Array Bytes Char
