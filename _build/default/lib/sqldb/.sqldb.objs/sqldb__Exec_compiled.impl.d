lib/sqldb/exec_compiled.ml: Agg_util Array Catalog Column Eval Exec_vectorized Fun Hash_util Hashtbl List Option Parallel Plan Relation Value
