lib/sqldb/sql_parse.ml: Array Buffer List Printf Sql_ast String Value
