lib/sqldb/parallel.ml: Atomic Domain Float List Unix
