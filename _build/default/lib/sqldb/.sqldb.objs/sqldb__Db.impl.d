lib/sqldb/db.ml: Catalog Exec_compiled Exec_vectorized List Plan Planner Relation Sql_parse
