lib/sqldb/relation.ml: Array Column Float Format Fun List Printf String Value
