lib/sqldb/column.ml: Array Bitset List Value
