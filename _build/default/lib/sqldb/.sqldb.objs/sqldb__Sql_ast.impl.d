lib/sqldb/sql_ast.ml: Buffer Float Printf String Value
