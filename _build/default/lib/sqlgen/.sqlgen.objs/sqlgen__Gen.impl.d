lib/sqlgen/gen.ml: Buffer Hashtbl List Printf Sqldb String Tondir
