examples/covariance.mli:
