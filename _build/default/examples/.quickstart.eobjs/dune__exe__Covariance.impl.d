examples/covariance.ml: Printf Pytond Sqldb Workloads
