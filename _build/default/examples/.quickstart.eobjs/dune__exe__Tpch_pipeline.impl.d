examples/tpch_pipeline.ml: Array Printf Pytond Sqldb Sys Tpch Unix
