examples/crime_index.mli:
