examples/quickstart.mli:
