examples/quickstart.ml: Array Catalog Column Db Pytond Relation Sqldb Value
