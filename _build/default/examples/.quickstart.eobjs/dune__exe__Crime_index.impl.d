examples/crime_index.ml: Printf Pytond Sqldb Workloads
