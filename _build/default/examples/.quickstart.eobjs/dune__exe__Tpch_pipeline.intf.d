examples/tpch_pipeline.mli:
