(* Covariance matrix over dense and sparse layouts (paper Fig. 9): the same
   einsum compiles to the Fig. 2 gram+reshape SQL on the dense (id, c0..cn)
   layout and to a Blacher-style grouped join on the sparse COO layout.

   Run with: dune exec examples/covariance.exe *)

let () =
  let db = Sqldb.Db.create () in
  Workloads.load_covar db ~rows:5000 ~cols:4 ~sparsity:0.4;
  print_endline "-- dense layout translation:";
  print_endline
    (Pytond.explain ~db ~source:Workloads.covar_dense_src ~fname:"query" ());
  print_endline "\n-- sparse (COO) layout translation:";
  print_endline
    (Pytond.explain ~db ~source:Workloads.covar_sparse_src ~fname:"query" ());
  let dense =
    Pytond.run ~db ~source:Workloads.covar_dense_src ~fname:"query" ()
  in
  Printf.printf "\ndense result:\n%s" (Sqldb.Relation.to_string dense);
  let sparse =
    Pytond.run ~db ~source:Workloads.covar_sparse_src ~fname:"query" ()
  in
  Printf.printf "\nsparse (COO) result:\n%s"
    (Sqldb.Relation.to_string ~max_rows:16 sparse)
