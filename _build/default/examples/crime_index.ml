(* The Crime Index hybrid workload (paper §V-A): a Pandas filter, a NumPy
   einsum over the dense relational layout, and a final Pandas reduction —
   all compiled to one SQL query.

   Run with: dune exec examples/crime_index.exe *)

let () =
  let db = Sqldb.Db.create () in
  Workloads.load_crime_index ~scale:5 db;
  print_endline "source:";
  print_endline Workloads.crime_index_src;
  print_endline (Pytond.explain ~db ~source:Workloads.crime_index_src ~fname:"query" ());
  let r =
    Pytond.run ~backend:Pytond.Compiled ~db ~source:Workloads.crime_index_src
      ~fname:"query" ()
  in
  Printf.printf "\ncrime index total (in-database): %s\n"
    (Sqldb.Relation.to_string r);
  let b =
    Pytond.run_python ~db ~source:Workloads.crime_index_src ~fname:"query" ()
  in
  Printf.printf "crime index total (python baseline): %s\n"
    (Sqldb.Relation.to_string b)
