(* Quickstart: load two tables, write a Pandas-style @pytond function,
   inspect the TondIR and SQL it compiles to, then run it in-database and
   compare with the eager Python-baseline interpreter.

   Run with: dune exec examples/quickstart.exe *)

open Sqldb

let source = {|
import pandas as pd

@pytond()
def query(orders, customers):
    recent = orders[orders.o_date >= '1995-01-01']
    totals = recent.groupby(['o_cust']).agg(
        total=('o_total', 'sum'),
        n=('o_id', 'count'))
    joined = totals.merge(customers, left_on='o_cust', right_on='c_id')
    result = joined[['c_name', 'total', 'n']]
    return result.sort_values(by='total', ascending=False)
|}

let () =
  (* 1. a tiny database with primary keys declared in the catalog *)
  let db = Db.create () in
  Db.load_table db "orders"
    ~cons:{ Catalog.no_constraints with primary_key = [ "o_id" ] }
    (Relation.create
       [| "o_id"; "o_cust"; "o_total"; "o_date" |]
       [| Column.of_ints [| 1; 2; 3; 4; 5 |];
          Column.of_ints [| 1; 1; 2; 3; 2 |];
          Column.of_floats [| 120.; 80.; 230.; 45.; 60. |];
          Column.of_dates
            (Array.map Value.date_of_iso
               [| "1995-02-01"; "1994-11-30"; "1995-07-14"; "1995-01-01";
                  "1996-03-03" |]) |]);
  Db.load_table db "customers"
    ~cons:{ Catalog.no_constraints with primary_key = [ "c_id" ] }
    (Relation.create
       [| "c_id"; "c_name" |]
       [| Column.of_ints [| 1; 2; 3 |];
          Column.of_strings [| "ada"; "grace"; "edsger" |] |]);

  (* 2. inspect the full compilation pipeline *)
  print_endline (Pytond.explain ~db ~source ~fname:"query" ());

  (* 3. run in-database on both engine paradigms *)
  print_endline "\n-- engine result (hyper-sim, 2 threads):";
  let r =
    Pytond.run ~backend:Pytond.Compiled ~threads:2 ~db ~source ~fname:"query" ()
  in
  print_string (Relation.to_string r);

  (* 4. the same source runs on the eager Pandas/NumPy baseline *)
  print_endline "\n-- python-baseline result:";
  let b = Pytond.run_python ~db ~source ~fname:"query" () in
  print_string (Relation.to_string b);
  assert (Relation.canonical r = Relation.canonical b);
  print_endline "\nengine and baseline agree."
