(* TPC-H end to end: generate data with the bundled dbgen, compile the
   Pandas version of a query (default Q3) with and without TondIR
   optimizations, and compare runtimes across backends.

   Run with: dune exec examples/tpch_pipeline.exe [-- q5 0.02] *)

let () =
  let qname = if Array.length Sys.argv > 1 then Sys.argv.(1) else "q3" in
  let sf =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.01
  in
  let source = Tpch.Queries.find qname in
  Printf.printf "-- %s (SF=%g)\n%s\n" qname sf source;
  let db = Tpch.Dbgen.make_db sf in
  let sql = Pytond.compile ~db ~source ~fname:"query" () in
  Printf.printf "-- optimized SQL:\n%s\n\n" sql;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let py, t_py =
    time (fun () -> Pytond.run_python ~db ~source ~fname:"query" ())
  in
  let _, t_g =
    time (fun () ->
        Pytond.run ~level:Pytond.O0 ~backend:Pytond.Vectorized ~db ~source
          ~fname:"query" ())
  in
  let r, t_o =
    time (fun () ->
        Pytond.run ~level:Pytond.O4 ~backend:Pytond.Compiled ~db ~source
          ~fname:"query" ())
  in
  Printf.printf "python baseline: %.3fs\ngrizzly-sim:     %.3fs\npytond (O4):     %.3fs\n"
    t_py t_g t_o;
  Printf.printf "\nresult (%d rows):\n%s" (Sqldb.Relation.n_rows r)
    (Sqldb.Relation.to_string ~max_rows:10 r);
  assert (Sqldb.Relation.canonical ~digits:3 py
          = Sqldb.Relation.canonical ~digits:3 r)
