# Convenience targets; CI runs `make check`.

DUNE ?= dune
SMOKE_SF ?= 0.005

.PHONY: all build test bench-smoke check clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Quick end-to-end benchmark pass at a tiny scale factor: exercises the
# dictionary-vs-raw toggle, both backends and the JSON writer without
# meaningful runtime.
bench-smoke: build
	PYTOND_SF=$(SMOKE_SF) PYTOND_RUNS=1 PYTOND_WARMUP=0 \
	  $(DUNE) exec bench/main.exe -- dict --json

check: build test bench-smoke

clean:
	$(DUNE) clean
