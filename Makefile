# Convenience targets; CI runs `make check`.

DUNE ?= dune
SMOKE_SF ?= 0.005
BENCH_SF ?= 0.05
SF01 ?= 0.1

.PHONY: all build test server-soak bench-smoke bench-compare bench-sf01 bench-fused bench-views bench-plancache check clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Service-layer suites under forced fault injection: the concurrent soak
# (client domains + interleaved ingest against the multi-tenant server),
# admission/retry/breaker units, and the per-table cache-invalidation
# tests. `dune runtest` already runs these with whatever PYTOND_FAULTS the
# environment carries; this leg pins faults on so every `make check` also
# exercises the recovery paths.
server-soak: build
	PYTOND_FAULTS=11 $(DUNE) exec test/test_main.exe -- test server

# Quick end-to-end benchmark pass at a tiny scale factor: exercises the
# dictionary-vs-raw toggle, the query-cache and zone-map experiments and
# the JSON writer. No --compare here: every result row now carries its
# scale factor, and the gate refuses to diff rows measured at different
# SFs, so a tiny-SF run can no longer be (mis)compared against the
# committed BENCH_SF baseline. bench-compare / bench-sf01 below are the
# apples-to-apples gates. Results go to a separate BENCH_smoke.json so
# the committed baseline is never clobbered by tiny-SF numbers.
bench-smoke: build
	PYTOND_SF=$(SMOKE_SF) PYTOND_RUNS=1 PYTOND_WARMUP=0 \
	  $(DUNE) exec bench/main.exe -- dict cache scan mixed views plancache --json-out BENCH_smoke.json

# Full-scale regression gate: re-measure at the baseline's scale factor and
# fail on any variant >10% slower (tolerance via PYTOND_COMPARE_TOL).
bench-compare: build
	PYTOND_SF=$(BENCH_SF) PYTOND_RUNS=5 PYTOND_WARMUP=1 \
	  $(DUNE) exec bench/main.exe -- dict cache scan --compare BENCH_results.json

# Radix smoke leg at SF 0.1: the radix experiment (q1/q3/q9/q12/q19, on
# vs off at 3 threads) gated against the committed BENCH_sf01.json
# baseline; this run's numbers go to BENCH_sf01_run.json for artifact
# upload. The experiment keeps best-of-4-rounds per variant, so one timed
# run per point suffices. Tolerance is wider than bench-compare's 10%:
# single-run minimums at SF 0.1 on a shared host still swing ~25%, and
# this gate is after structural regressions (a join silently falling off
# the radix path roughly doubles q9/q19), not noise-level drift.
bench-sf01: build
	PYTOND_SF=$(SF01) PYTOND_RUNS=1 PYTOND_WARMUP=1 PYTOND_COMPARE_TOL=0.35 \
	  $(DUNE) exec bench/main.exe -- radix --compare BENCH_sf01.json --json-out BENCH_sf01_run.json

# Fused-kernel smoke leg at SF 0.1: the fused experiment (q1/q6/q12/q19,
# kernels on vs off at 3 threads) gated against the committed
# BENCH_sf01.json baseline, same tolerance rationale as bench-sf01. The
# --json-out merge-write carries the radix rows over, so refreshing the
# committed baseline is `... -- radix fused --json-out BENCH_sf01.json`
# (both experiments in one invocation).
bench-fused: build
	PYTOND_SF=$(SF01) PYTOND_RUNS=1 PYTOND_WARMUP=1 PYTOND_COMPARE_TOL=0.35 \
	  $(DUNE) exec bench/main.exe -- fused --compare BENCH_sf01.json --json-out BENCH_sf01_run.json

# Materialized-view refresh leg at SF 0.1: cold plan+execute vs cached-plan
# re-execution vs incremental delta refresh for q1/q6 under ~1% lineitem
# append rounds. The timed region is the stale read a dashboard pays after
# an ingest round; the accept bar for this experiment is the delta refresh
# staying an order of magnitude under re-execution, checked by eye or via
# --compare once a baseline with view rows is committed. Rows carry the
# ivm config stamp, so a PYTOND_IVM=0 run can never be diffed against an
# IVM-on baseline.
bench-views: build
	PYTOND_SF=$(SF01) PYTOND_RUNS=2 PYTOND_WARMUP=1 \
	  $(DUNE) exec bench/main.exe -- views --json-out BENCH_views_run.json

# Plan-cache leg at SF 0.1: per-call cold plan (fingerprint + parse +
# template plan + insert) vs cached bind (fingerprint + lookup + constant
# substitution) for q1/q3/q6, plus the PR-8 mixed-tenant stream reporting
# the bind hit rate under interleaved ingest. The accept bar is the cached
# bind staying >=5x under the cold plan; rows carry the plancache config
# stamp so a PYTOND_PLANCACHE=0 run can never be diffed against a
# cache-on baseline.
bench-plancache: build
	PYTOND_SF=$(SF01) PYTOND_RUNS=2 PYTOND_WARMUP=1 \
	  $(DUNE) exec bench/main.exe -- plancache --json-out BENCH_plancache_run.json

check: build test server-soak bench-smoke

clean:
	$(DUNE) clean
