# Convenience targets; CI runs `make check`.

DUNE ?= dune
SMOKE_SF ?= 0.005
BENCH_SF ?= 0.05

.PHONY: all build test bench-smoke bench-compare check clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# Quick end-to-end benchmark pass at a tiny scale factor: exercises the
# dictionary-vs-raw toggle, the query-cache and zone-map experiments, the
# JSON writer and the --compare gate. The committed baseline was recorded
# at BENCH_SF, so at SMOKE_SF the gate has large headroom — it catches
# catastrophic slowdowns and keeps the comparison machinery exercised;
# bench-compare below is the apples-to-apples gate. Results go to a
# separate BENCH_smoke.json so the committed baseline is never clobbered
# by tiny-SF numbers.
bench-smoke: build
	PYTOND_SF=$(SMOKE_SF) PYTOND_RUNS=1 PYTOND_WARMUP=0 \
	  $(DUNE) exec bench/main.exe -- dict cache scan --compare BENCH_results.json --json-out BENCH_smoke.json

# Full-scale regression gate: re-measure at the baseline's scale factor and
# fail on any variant >10% slower (tolerance via PYTOND_COMPARE_TOL).
bench-compare: build
	PYTOND_SF=$(BENCH_SF) PYTOND_RUNS=5 PYTOND_WARMUP=1 \
	  $(DUNE) exec bench/main.exe -- dict cache scan --compare BENCH_results.json

check: build test bench-smoke

clean:
	$(DUNE) clean
