(** Statistics, cost-based planning, zone-map skipping and the query cache.

    Covers: per-column statistics computed at ingest (min/max, null and
    distinct counts, exact dictionary counts), zone-map scan skipping
    equivalence against unskipped execution (including all-NULL and
    single-value blocks), join-order selection on skewed catalogs (smaller
    side becomes the hash-join build side), cardinality-estimate sanity on
    TPC-H range predicates, and the [Db] query cache (hit/miss accounting,
    invalidation on ingest, stand-down under fault injection). *)

open Sqldb
open Helpers

(* Cache tests must observe cache behaviour regardless of the environment:
   PYTOND_FAULTS=<seed> in CI would make the cache stand down, and
   PYTOND_CACHE=0 would disable it outright. Run [f] with faults disarmed
   and the cache on, then restore both. *)
let with_clean_cache_env f =
  let saved_cache = Db.cache_enabled_now () in
  Faults.disarm ();
  Db.set_cache_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Db.set_cache_enabled saved_cache;
      Faults.arm_from_env ())
    f

(* ------------------------------------------------------------------ *)
(* Column statistics                                                  *)
(* ------------------------------------------------------------------ *)

let test_basic_stats () =
  let db = Db.create () in
  Db.load_table db "t"
    (rel [ "a"; "b"; "s" ]
       [ ints [| 5; 1; 9; 3; 7 |];
         Column.of_values Value.TFloat
           [| Value.VFloat 1.5; Value.VNull; Value.VFloat 0.5; Value.VNull;
              Value.VFloat 2.5 |];
         strings [| "x"; "y"; "x"; "z"; "x" |] ]);
  let st = Option.get (Catalog.stats_opt (Db.catalog db) "t") in
  Alcotest.(check int) "row count" 5 st.Stats.row_count;
  let a = st.Stats.cols.(0) and b = st.Stats.cols.(1) and s = st.Stats.cols.(2) in
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "a range" (Some (1., 9.)) a.Stats.range;
  Alcotest.(check int) "a nulls" 0 a.Stats.null_count;
  Alcotest.(check (float 0.)) "a distinct" 5. a.Stats.distinct;
  Alcotest.(check int) "b nulls" 2 b.Stats.null_count;
  Alcotest.(check (option (pair (float 0.) (float 0.))))
    "b range ignores nulls" (Some (0.5, 2.5)) b.Stats.range;
  Alcotest.(check (float 0.)) "s distinct" 3. s.Stats.distinct;
  Alcotest.(check (option (pair string string)))
    "s min/max" (Some ("x", "z")) s.Stats.str_range

(* Dictionary columns report the exact dictionary size, and the raw layout
   of the same data estimates the same number — stats are encoding-neutral
   (the PYTOND_NO_DICT acceptance criterion). *)
let test_dict_distinct_consistency () =
  let data = Array.init 6000 (fun i -> Printf.sprintf "g%d" (i mod 37)) in
  let stats_with dict =
    let saved = Db.dict_encoding_enabled () in
    Db.set_dict_encoding dict;
    Fun.protect
      ~finally:(fun () -> Db.set_dict_encoding saved)
      (fun () ->
        let db = Db.create () in
        Db.load_table db "t" (rel [ "g" ] [ strings data ]);
        (Option.get (Catalog.stats_opt (Db.catalog db) "t")).Stats.cols.(0))
  in
  let d = stats_with true and r = stats_with false in
  Alcotest.(check (float 0.)) "dict distinct exact" 37. d.Stats.distinct;
  Alcotest.(check (float 0.)) "raw distinct matches" 37. r.Stats.distinct;
  Alcotest.(check (option (pair string string)))
    "same str_range" r.Stats.str_range d.Stats.str_range

(* Primary-key columns are known unique: distinct = row count exactly. *)
let test_unique_constraint_distinct () =
  let n = 10_000 in
  let db = Db.create () in
  Db.load_table db "t"
    ~cons:{ Catalog.no_constraints with primary_key = [ "id" ] }
    (rel [ "id" ] [ ints (Array.init n (fun i -> i * 3)) ]);
  let st = Option.get (Catalog.stats_opt (Db.catalog db) "t") in
  Alcotest.(check (float 0.))
    "pk distinct exact" (float_of_int n) st.Stats.cols.(0).Stats.distinct

(* ------------------------------------------------------------------ *)
(* Zone maps and scan skipping                                        *)
(* ------------------------------------------------------------------ *)

(* Three-block column exercising the degenerate zone shapes: an ascending
   block, an all-NULL block (empty zone interval), a constant block. *)
let zone_shaped_db () =
  let bs = Stats.block_size in
  let n = 3 * bs in
  let vals =
    Array.init n (fun i ->
        if i < bs then Value.VInt i (* 0 .. bs-1, ascending *)
        else if i < 2 * bs then Value.VNull (* all-NULL block *)
        else Value.VInt 5 (* single-value block *))
  in
  let payload = Array.init n (fun i -> float_of_int (i mod 100)) in
  let db = Db.create () in
  Db.load_table db "t"
    (rel [ "k"; "v" ] [ Column.of_values Value.TInt vals; floats payload ]);
  db

let test_zone_maps_shapes () =
  let db = zone_shaped_db () in
  let st = Option.get (Catalog.stats_opt (Db.catalog db) "t") in
  let zs = Option.get st.Stats.zones.(0) in
  Alcotest.(check int) "three blocks" 3 (Array.length zs);
  Alcotest.(check (float 0.)) "block 0 min" 0. zs.(0).Stats.zmin;
  Alcotest.(check (float 0.))
    "block 0 max"
    (float_of_int (Stats.block_size - 1))
    zs.(0).Stats.zmax;
  Alcotest.(check bool)
    "all-NULL block is the empty interval" true
    (zs.(1).Stats.zmin > zs.(1).Stats.zmax);
  Alcotest.(check (float 0.)) "constant block min" 5. zs.(2).Stats.zmin;
  Alcotest.(check (float 0.)) "constant block max" 5. zs.(2).Stats.zmax

(* Skipped execution must equal unskipped execution exactly. The same
   queries run on both backends and thread counts (execute_everywhere
   cross-checks them) and against a shuffled copy of the same rows, whose
   zones prune nothing — so any answer divergence indicts the skipping. *)
let test_zone_skip_equivalence () =
  let db = zone_shaped_db () in
  (* same rows, interleaved so every block's zone spans the full domain *)
  let n = 3 * Stats.block_size in
  let perm = Array.init n (fun i -> (i * 7919) mod n) in
  let k = (Catalog.relation (Db.catalog db) "t").Relation.cols.(0) in
  let v = (Catalog.relation (Db.catalog db) "t").Relation.cols.(1) in
  let db2 = Db.create () in
  Db.load_table db2 "t"
    (rel [ "k"; "v" ]
       [ Column.of_values Value.TInt
           (Array.map (fun i -> Column.get k i) perm);
         Column.of_values Value.TFloat
           (Array.map (fun i -> Column.get v i) perm) ]);
  List.iter
    (fun sql ->
      let skipping = execute_everywhere db sql in
      let control = execute_everywhere db2 sql in
      check_rel sql control skipping)
    [ (* prunes the NULL and constant blocks *)
      "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k >= 1000";
      (* selects only the constant block's value, plus 1 row of block 0 *)
      "SELECT COUNT(*) AS n FROM t WHERE k = 5";
      (* empty range: every block prunes *)
      "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k < 0";
      (* range + second conjunct the zones know nothing about *)
      "SELECT COUNT(*) AS n FROM t WHERE k < 100 AND v < 50";
      (* grouped aggregate over a pruned scan *)
      "SELECT k, COUNT(*) AS n FROM t WHERE k >= 4090 AND k < 4100 \
       GROUP BY k ORDER BY k";
      (* OR of two checkable ranges *)
      "SELECT COUNT(*) AS n FROM t WHERE k < 3 OR k > 4090" ]

(* ------------------------------------------------------------------ *)
(* Join ordering on skewed catalogs                                   *)
(* ------------------------------------------------------------------ *)

let skewed_db () =
  let db = Db.create () in
  let big_n = 20_000 and small_n = 12 in
  Db.load_table db "big"
    (rel [ "b_id"; "b_k" ]
       [ ints (Array.init big_n Fun.id);
         ints (Array.init big_n (fun i -> i mod small_n)) ]);
  Db.load_table db "small"
    ~cons:{ Catalog.no_constraints with primary_key = [ "s_id" ] }
    (rel [ "s_id"; "s_tag" ]
       [ ints (Array.init small_n Fun.id);
         strings (Array.init small_n (fun i -> Printf.sprintf "t%d" i)) ]);
  db

let rec find_join (p : Plan.plan) =
  match p.Plan.node with
  | Plan.Join { left; right; _ } -> Some (left, right)
  | Plan.Scan _ | Plan.PValues _ -> None
  | Plan.Filter (s, _)
  | Plan.Project (s, _)
  | Plan.Aggregate (s, _, _)
  | Plan.Sort (s, _)
  | Plan.LimitN (s, _)
  | Plan.Distinct s
  | Plan.Window (s, _, _) -> find_join s
  | Plan.SemiJoin { left; _ } -> find_join left

let rec base_scans (p : Plan.plan) =
  match p.Plan.node with
  | Plan.Scan name -> [ name ]
  | Plan.PValues _ -> []
  | Plan.Filter (s, _)
  | Plan.Project (s, _)
  | Plan.Aggregate (s, _, _)
  | Plan.Sort (s, _)
  | Plan.LimitN (s, _)
  | Plan.Distinct s
  | Plan.Window (s, _, _) -> base_scans s
  | Plan.Join { left; right; _ } | Plan.SemiJoin { left; right; _ } ->
    base_scans left @ base_scans right

(* The probe side goes left, the build side right: on a 20000-vs-12 join the
   planner must put [small] on the right, whichever order the query names
   the tables. *)
let test_build_side_is_small () =
  let db = skewed_db () in
  List.iter
    (fun sql ->
      let bq = Db.plan db sql in
      match find_join bq.Plan.main with
      | None -> Alcotest.fail ("no join in plan for: " ^ sql)
      | Some (left, right) ->
        Alcotest.(check (list string)) ("build side of: " ^ sql) [ "small" ]
          (base_scans right);
        Alcotest.(check (list string)) ("probe side of: " ^ sql) [ "big" ]
          (base_scans left);
        Alcotest.(check bool)
          ("build estimate below probe estimate: " ^ sql)
          true
          (right.Plan.est <= left.Plan.est))
    [ "SELECT COUNT(*) AS n FROM big, small WHERE b_k = s_id";
      "SELECT COUNT(*) AS n FROM small, big WHERE s_id = b_k" ]

(* Three-way chain: the two smaller relations join first (smallest estimated
   intermediate), leaving the big table to probe last. *)
let test_three_way_order () =
  let db = skewed_db () in
  Db.load_table db "mid"
    (rel [ "m_id"; "m_k" ]
       [ ints (Array.init 300 Fun.id); ints (Array.init 300 (fun i -> i mod 12)) ]);
  let bq =
    Db.plan db
      "SELECT COUNT(*) AS n FROM big, mid, small WHERE b_k = s_id AND m_k = s_id"
  in
  match find_join bq.Plan.main with
  | None -> Alcotest.fail "no join in plan"
  | Some (left, right) ->
    (* top join: big probes the (mid x small) build *)
    Alcotest.(check (list string)) "top probe" [ "big" ] (base_scans left);
    Alcotest.(check bool)
      "top build covers mid and small" true
      (List.sort compare (base_scans right) = [ "mid"; "small" ])

(* ------------------------------------------------------------------ *)
(* Cardinality estimates                                              *)
(* ------------------------------------------------------------------ *)

let rec find_filter (p : Plan.plan) =
  match p.Plan.node with
  | Plan.Filter _ -> Some p
  | Plan.Scan _ | Plan.PValues _ -> None
  | Plan.Project (s, _)
  | Plan.Aggregate (s, _, _)
  | Plan.Sort (s, _)
  | Plan.LimitN (s, _)
  | Plan.Distinct s
  | Plan.Window (s, _, _) -> find_filter s
  | Plan.Join { left; right; _ } | Plan.SemiJoin { left; right; _ } -> (
    match find_filter left with Some f -> Some f | None -> find_filter right)

(* Single-table range predicates on TPC-H: the estimate derived from
   min/max interpolation must land within 10x of the true row count
   (acceptance criterion). *)
let test_tpch_estimates_within_10x () =
  let db = Tpch.Dbgen.make_db 0.005 in
  List.iter
    (fun where ->
      let sql = "SELECT * FROM lineitem WHERE " ^ where in
      let bq = Db.plan db sql in
      let actual = Relation.n_rows (Db.execute db sql) in
      match find_filter bq.Plan.main with
      | None -> Alcotest.fail ("no filter for: " ^ where)
      | Some f ->
        let est = Float.max 1. f.Plan.est
        and act = Float.max 1. (float_of_int actual) in
        let ratio = Float.max (est /. act) (act /. est) in
        if ratio > 10. then
          Alcotest.failf "%s: est %.0f vs actual %d (ratio %.1f)" where est
            actual ratio)
    [ "l_quantity < 10";
      "l_quantity >= 45";
      "l_shipdate >= DATE '1995-01-01'";
      "l_orderkey < 1000";
      "l_discount >= 0.05 AND l_discount <= 0.07";
      "l_extendedprice > 20000" ]

(* explain output carries both numbers. *)
let test_explain_shows_est_and_actual () =
  let db = Tpch.Dbgen.make_db 0.005 in
  let txt = Db.explain db "SELECT COUNT(*) AS n FROM lineitem WHERE l_quantity < 10" in
  Alcotest.(check bool) "has est" true (contains_sub "est=" txt);
  Alcotest.(check bool) "has actual" true (contains_sub "actual=" txt)

(* ------------------------------------------------------------------ *)
(* Query cache                                                        *)
(* ------------------------------------------------------------------ *)

let cache_db () =
  let db = Db.create () in
  Db.load_table db "t"
    (rel [ "k"; "v" ]
       [ ints [| 1; 2; 3; 4; 5 |]; floats [| 1.; 2.; 3.; 4.; 5. |] ]);
  db

let test_cache_hit_miss () =
  with_clean_cache_env (fun () ->
      let db = cache_db () in
      let sql = "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY k" in
      let r1 = Db.execute db sql in
      let st = Db.cache_stats db in
      Alcotest.(check int) "first run misses" 1 st.Db.misses;
      Alcotest.(check int) "no hit yet" 0 st.Db.hits;
      let r2 = Db.execute db sql in
      let st = Db.cache_stats db in
      Alcotest.(check int) "second run hits" 1 st.Db.hits;
      check_rel "identical relation on repeat" r1 r2;
      (* whitespace-insensitive key *)
      let r3 = Db.execute db "SELECT k,   SUM(v) AS s\nFROM t GROUP BY k ORDER BY k" in
      Alcotest.(check int) "normalized SQL hits" 2 (Db.cache_stats db).Db.hits;
      check_rel "normalized repeat" r1 r3;
      (* different backend and thread count are distinct entries *)
      ignore (Db.execute ~backend:Db.Compiled db sql);
      ignore (Db.execute ~threads:3 db sql);
      let st = Db.cache_stats db in
      Alcotest.(check int) "other configs miss" 3 st.Db.misses)

let test_cache_invalidation_on_ingest () =
  with_clean_cache_env (fun () ->
      let db = cache_db () in
      let sql = "SELECT COUNT(*) AS n FROM t" in
      let before = Db.execute db sql in
      Alcotest.(check string)
        "5 rows before" "n=5"
        (Printf.sprintf "n=%d"
           (match Column.get before.Relation.cols.(0) 0 with
           | Value.VInt n -> n
           | _ -> -1));
      (* reload with more rows: the cached result must not survive *)
      Db.load_table db "t"
        (rel [ "k"; "v" ] [ ints [| 1; 2; 3; 4; 5; 6 |]; floats (Array.make 6 1.) ]);
      Alcotest.(check int) "cache emptied" 0 (Db.cache_stats db).Db.entries;
      let after = Db.execute db sql in
      Alcotest.(check string)
        "6 rows after" "n=6"
        (Printf.sprintf "n=%d"
           (match Column.get after.Relation.cols.(0) 0 with
           | Value.VInt n -> n
           | _ -> -1)))

let test_cache_disabled_under_faults () =
  with_clean_cache_env (fun () ->
      let db = cache_db () in
      let sql = "SELECT COUNT(*) AS n FROM t" in
      Faults.arm ~seed:11 ();
      Fun.protect ~finally:Faults.disarm (fun () ->
          ignore (Db.execute db sql);
          ignore (Db.execute db sql));
      let st = Db.cache_stats db in
      Alcotest.(check int) "no cache traffic under faults" 0
        (st.Db.hits + st.Db.misses))

let test_cache_toggle () =
  with_clean_cache_env (fun () ->
      let db = cache_db () in
      let sql = "SELECT COUNT(*) AS n FROM t" in
      Db.set_cache_enabled false;
      ignore (Db.execute db sql);
      ignore (Db.execute db sql);
      Alcotest.(check int) "disabled: no traffic" 0
        ((Db.cache_stats db).Db.hits + (Db.cache_stats db).Db.misses);
      Db.set_cache_enabled true;
      ignore (Db.execute db sql);
      ignore (Db.execute db sql);
      Alcotest.(check int) "re-enabled: hit" 1 (Db.cache_stats db).Db.hits)

(* LRU bound: far more distinct queries than [cache] capacity; entries stay
   bounded and evictions are counted. *)
let test_cache_eviction () =
  with_clean_cache_env (fun () ->
      let db = cache_db () in
      for i = 1 to 100 do
        ignore
          (Db.execute db (Printf.sprintf "SELECT COUNT(*) AS n FROM t WHERE k < %d" i))
      done;
      let st = Db.cache_stats db in
      Alcotest.(check bool) "entries bounded" true (st.Db.entries <= 64);
      Alcotest.(check bool) "evictions counted" true (st.Db.evictions > 0))

let suites =
  [ ( "stats",
      [ tc "min/max/null/distinct at ingest" test_basic_stats;
        tc "dict vs raw distinct consistency" test_dict_distinct_consistency;
        tc "unique constraint gives exact distinct" test_unique_constraint_distinct ] );
    ( "zone-maps",
      [ tc "block shapes incl. all-NULL and constant" test_zone_maps_shapes;
        tc "skipping equals unskipped execution" test_zone_skip_equivalence ] );
    ( "join-order",
      [ tc "small side builds" test_build_side_is_small;
        tc "three-way chain order" test_three_way_order ] );
    ( "estimates",
      [ tc "TPC-H range predicates within 10x" test_tpch_estimates_within_10x;
        tc "explain prints est and actual" test_explain_shows_est_and_actual ] );
    ( "query-cache",
      [ tc "hit/miss accounting and repeat identity" test_cache_hit_miss;
        tc "invalidation on ingest" test_cache_invalidation_on_ingest;
        tc "stands down under faults" test_cache_disabled_under_faults;
        tc "PYTOND_CACHE toggle" test_cache_toggle;
        tc "LRU eviction bound" test_cache_eviction ] ) ]
