(** Test runner: aggregates all suites. *)

let () =
  Alcotest.run "pytond"
    (Test_storage.suites @ Test_dict.suites @ Test_engine.suites
   @ Test_ir.suites @ Test_frontend.suites @ Test_tensor.suites
   @ Test_numpy_api.suites @ Test_pipeline.suites @ Test_errors.suites
   @ Test_faults.suites @ Test_stats.suites @ Test_radix.suites
   @ Test_fused.suites @ Test_server.suites @ Test_matview.suites
   @ Test_plancache.suites)
