(** Parameterized plan cache: fingerprint round-trips over the full TPC-H
    and paper-workload query set, bind-vs-direct execution identity on both
    backends, guard-driven specialization, text normalization, and
    shape-keyed matview routing. *)

open Sqldb
open Helpers

(* ------------------------------------------------------------------ *)
(* Query corpus: every TPC-H query and every paper workload, compiled  *)
(* to SQL against its own dataset.                                     *)
(* ------------------------------------------------------------------ *)

let tpch_db = lazy (Tpch.Dbgen.make_db 0.005)

let tpch_sqls =
  lazy
    (let db = Lazy.force tpch_db in
     List.map
       (fun (name, src) ->
         (name, db, Pytond.compile ~db ~source:src ~fname:"query" ()))
       Tpch.Queries.all)

(* The hybrid_* workloads share one dataset; build it once. *)
let hybrid_db =
  lazy
    (let db = Db.create () in
     Workloads.load_hybrid ~rows:20_000 db;
     db)

let workload_sqls =
  lazy
    (List.map
       (fun (name, load, src) ->
         let db =
           if String.length name >= 6 && String.sub name 0 6 = "hybrid" then
             Lazy.force hybrid_db
           else begin
             let db = Db.create () in
             load db;
             db
           end
         in
         (name, db, Pytond.compile ~db ~source:src ~fname:"query" ()))
       Workloads.all)

let corpus () = Lazy.force tpch_sqls @ Lazy.force workload_sqls

(* ------------------------------------------------------------------ *)
(* Round-trip: parameterize -> re-render literals -> re-fingerprint    *)
(* must be a fixpoint, and the shape itself must parse and print       *)
(* stably.                                                             *)
(* ------------------------------------------------------------------ *)

(* Substitute the extracted constants back into the shape text. Shape
   tokens are space-separated, so each [$k] is a standalone word. *)
let relit (f : Sql_shape.t) : string =
  String.split_on_char ' ' f.Sql_shape.shape
  |> List.map (fun w ->
         if String.length w >= 2 && w.[0] = '$' then
           match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
           | Some k when k >= 1 && k <= Array.length f.Sql_shape.params ->
             Sql_ast.lit_to_sql f.Sql_shape.params.(k - 1)
           | _ -> w
         else w)
  |> String.concat " "

let test_roundtrip =
  tc "fingerprint round-trips over TPC-H and workloads" (fun () ->
      List.iter
        (fun (name, _db, sql) ->
          let f = Sql_shape.fingerprint sql in
          (* the shape is legal SQL, and print/parse converges: one
             round may reassociate AND chains, after which printing is a
             fixpoint *)
          let ast = Sql_parse.parse f.Sql_shape.shape in
          let p1 = Sql_print.query_to_sql ast in
          let p2 = Sql_print.query_to_sql (Sql_parse.parse p1) in
          Alcotest.(check string)
            (name ^ ": shape print/parse stable")
            p2
            (Sql_print.query_to_sql (Sql_parse.parse p2));
          (* substituting the constants back and re-fingerprinting yields
             the identical shape and parameter vector *)
          let f2 = Sql_shape.fingerprint (relit f) in
          Alcotest.(check string)
            (name ^ ": shape stable under re-fingerprint")
            f.Sql_shape.shape f2.Sql_shape.shape;
          Alcotest.(check bool)
            (name ^ ": params stable under re-fingerprint")
            true
            (f.Sql_shape.params = f2.Sql_shape.params))
        (corpus ()))

let test_dollar_rejected =
  tc "pre-existing $k placeholders are rejected" (fun () ->
      Alcotest.(check bool)
        "constant_key is None" true
        (Sql_shape.constant_key "SELECT o_id FROM orders WHERE o_cust = $1"
        = None))

(* ------------------------------------------------------------------ *)
(* Bind-vs-direct identity: planning the shape as a template and       *)
(* binding the constants must execute bit-identically to planning the  *)
(* literal text, on both backends, single- and multi-threaded.         *)
(* ------------------------------------------------------------------ *)

let test_bind_identity =
  tc "template bind executes identically to direct plan" (fun () ->
      List.iter
        (fun (name, db, sql) ->
          let cat = Catalog.pin db.Db.catalog in
          let f = Sql_shape.fingerprint sql in
          let direct = Db.plan_on cat sql in
          let tpl, _guards =
            Planner.plan_template cat ~params:f.Sql_shape.params
              (Sql_parse.parse f.Sql_shape.shape)
          in
          let bound = Plan.bind_query f.Sql_shape.params tpl in
          List.iter
            (fun threads ->
              check_rel
                (Printf.sprintf "%s vectorized @%dt" name threads)
                (Exec_vectorized.run_query ~threads cat direct)
                (Exec_vectorized.run_query ~threads cat bound);
              check_rel
                (Printf.sprintf "%s compiled @%dt" name threads)
                (Exec_compiled.run_query ~threads cat direct)
                (Exec_compiled.run_query ~threads cat bound))
            [ 1; 3 ])
        (corpus ()))

(* With faults armed the plan cache stands down: results stay correct and
   no template is planned or bound. *)
let test_faults_stand_down =
  tc "plan cache stands down under fault injection" (fun () ->
      let db = mini_db () in
      let sql = "SELECT o_id FROM orders WHERE o_total < 150.0" in
      let expected = Db.execute db sql in
      let before = Db.cache_stats db in
      Faults.arm ~seed:42 ();
      Fun.protect ~finally:Faults.arm_from_env (fun () ->
          let r = Db.execute db sql in
          check_rel "armed result identical" expected r;
          let s = Db.cache_stats db in
          Alcotest.(check int) "no cold template planned"
            before.Db.bind_misses s.Db.bind_misses;
          Alcotest.(check int) "no template bound" before.Db.bind_hits
            s.Db.bind_hits))

(* ------------------------------------------------------------------ *)
(* Plan-cache behavior through Db.execute                              *)
(* ------------------------------------------------------------------ *)

(* Run [f] with the plan cache force-enabled, restoring the prior state:
   the suite must also pass under a PYTOND_PLANCACHE=0 environment. *)
let with_plancache f () =
  let prev = Db.plancache_enabled_now () in
  Db.set_plancache_enabled true;
  Fun.protect ~finally:(fun () -> Db.set_plancache_enabled prev) f

let test_bind_hit =
  tc "same shape, new constant: bound without replanning"
    (with_plancache (fun () ->
      let db = mini_db () in
      let q c = Printf.sprintf "SELECT o_id FROM orders WHERE o_cust = %d" c in
      let r10 = Db.execute db (q 10) in
      Alcotest.(check int) "two orders for cust 10" 2 (Relation.n_rows r10);
      let s1 = Db.cache_stats db in
      Alcotest.(check int) "cold plan" 1 s1.Db.bind_misses;
      Alcotest.(check int) "one shape cached" 1 s1.Db.plan_entries;
      let r20 = Db.execute ~owner:"t1" db (q 20) in
      Alcotest.(check int) "two orders for cust 20" 2 (Relation.n_rows r20);
      let s2 = Db.cache_stats db in
      Alcotest.(check int) "template bound, no replan" 1 s2.Db.bind_hits;
      Alcotest.(check int) "still one shape" 1 s2.Db.plan_entries;
      let _, _, _, _, _, bh = Db.owner_stats db "t1" in
      Alcotest.(check int) "bind hit attributed to tenant" 1 bh))

let test_toggle =
  tc "PYTOND_PLANCACHE toggle disables the cache" (fun () ->
      let db = mini_db () in
      let prev = Db.plancache_enabled_now () in
      Db.set_plancache_enabled false;
      Fun.protect
        ~finally:(fun () -> Db.set_plancache_enabled prev)
        (fun () ->
          ignore (Db.execute db "SELECT o_id FROM orders WHERE o_cust = 10");
          ignore (Db.execute db "SELECT o_id FROM orders WHERE o_cust = 20");
          let s = Db.cache_stats db in
          Alcotest.(check int) "no templates planned" 0 s.Db.bind_misses;
          Alcotest.(check int) "no templates bound" 0 s.Db.bind_hits;
          Alcotest.(check int) "no shapes cached" 0 s.Db.plan_entries))

let test_plan_quota =
  tc "per-tenant plan quota evicts oldest template"
    (with_plancache (fun () ->
      let db = mini_db () in
      let exec sql = ignore (Db.execute ~owner:"a" ~plan_quota:1 db sql) in
      exec "SELECT o_id FROM orders WHERE o_cust = 10";
      exec "SELECT o_total FROM orders WHERE o_cust = 10";
      let s = Db.cache_stats db in
      Alcotest.(check int) "quota holds one template" 1 s.Db.plan_entries))

let test_invalidation =
  tc "replacing a table drops its cached templates"
    (with_plancache (fun () ->
      let db = mini_db () in
      ignore (Db.execute db "SELECT o_id FROM orders WHERE o_cust = 10");
      ignore (Db.execute db "SELECT c_name FROM cust WHERE c_id = 10");
      Alcotest.(check int) "two shapes cached" 2
        (Db.cache_stats db).Db.plan_entries;
      Db.load_table db "orders"
        (rel [ "o_id"; "o_cust"; "o_total"; "o_date" ]
           [ ints [| 1 |]; ints [| 10 |]; floats [| 9. |];
             dates [| "1999-01-01" |] ]);
      Alcotest.(check int) "orders template dropped, cust kept" 1
        (Db.cache_stats db).Db.plan_entries))

(* ------------------------------------------------------------------ *)
(* Guards: a constant whose selectivity falls outside the template's   *)
(* assumed bucket forces a specialized replan, cached as a sibling.    *)
(* ------------------------------------------------------------------ *)

let test_guard_trip =
  tc "out-of-range constant replans into a specialization"
    (with_plancache (fun () ->
      let db = mini_db () in
      (* o_total spans [50, 200]: 100 and 110 estimate into the same
         selectivity bucket; 51 is far more selective. *)
      let q c =
        Printf.sprintf
          "SELECT o_id FROM orders WHERE o_total < %.1f ORDER BY o_id" c
      in
      let ids r = Relation.canonical r in
      let r1 = Db.execute db (q 100.) in
      Alcotest.(check (list string)) "lt 100" [ "3"; "4" ] (ids r1);
      let r2 = Db.execute db (q 110.) in
      Alcotest.(check (list string)) "lt 110" [ "1"; "3"; "4" ] (ids r2);
      let s = Db.cache_stats db in
      Alcotest.(check int) "same bucket: bound" 1 s.Db.bind_hits;
      Alcotest.(check int) "no trip yet" 0 s.Db.guard_trips;
      (* before executing: explain predicts the trip *)
      let e = Db.explain db (q 51.) in
      Alcotest.(check bool) "explain reports guard trip" true
        (contains_sub "guard trip" e);
      let r3 = Db.execute db (q 51.) in
      Alcotest.(check (list string)) "lt 51" [ "3" ] (ids r3);
      let s2 = Db.cache_stats db in
      Alcotest.(check int) "guard tripped" 1 s2.Db.guard_trips;
      Alcotest.(check int) "shared entry not poisoned" 1 s2.Db.plan_entries;
      (* the specialization now serves this bucket *)
      let e2 = Db.explain db (q 51.) in
      Alcotest.(check bool) "explain reports specialized bind" true
        (contains_sub "specialized bind hit" e2);
      (* and the original template still binds in its own bucket *)
      let r4 = Db.execute db (q 105.) in
      Alcotest.(check (list string)) "lt 105" [ "1"; "3"; "4" ] (ids r4);
      let s3 = Db.cache_stats db in
      Alcotest.(check int) "template still binds" 2 s3.Db.bind_hits;
      Alcotest.(check int) "no second trip" 1 s3.Db.guard_trips))

(* ------------------------------------------------------------------ *)
(* normalize_sql: comments and redundant whitespace                    *)
(* ------------------------------------------------------------------ *)

let test_normalize =
  tc "normalize_sql strips comments and collapses whitespace" (fun () ->
      let n = Db.normalize_sql in
      Alcotest.(check string) "line comment"
        (n "SELECT a FROM t")
        (n "SELECT a -- trailing comment\nFROM t");
      Alcotest.(check string) "block comment"
        (n "SELECT a FROM t")
        (n "SELECT /* inline\n block */ a FROM t");
      Alcotest.(check string) "whitespace inside parens"
        (n "SELECT sum(a, b) FROM t")
        (n "SELECT sum(  a ,\n\t b ) FROM t");
      Alcotest.(check bool) "comment syntax inside strings survives" true
        (contains_sub "'--x'" (n "SELECT '--x' FROM t"));
      Alcotest.(check bool) "unterminated block comment eats to end" true
        (n "SELECT a FROM t /* oops" = n "SELECT a FROM t"))

(* ------------------------------------------------------------------ *)
(* Matview routing through the shape key                               *)
(* ------------------------------------------------------------------ *)

let test_matview_shape_routing =
  tc "view serves comment/whitespace variants of its SQL"
    (with_plancache (fun () ->
      let db = mini_db () in
      let sql =
        "SELECT o_cust, SUM(o_total) AS s FROM orders WHERE o_total > 60.0 \
         GROUP BY o_cust ORDER BY o_cust"
      in
      (match Db.register_view db ~name:"v" sql with
      | Ok () -> ()
      | Error e -> Alcotest.failf "register_view: %s" e);
      let expected = Db.execute db sql in
      let variant =
        "select o_cust , SUM( o_total ) as s -- cached upstream\n\
         from orders where o_total > 60.0 group by o_cust order by o_cust"
      in
      let r = Db.execute db variant in
      check_rel "variant answered" expected r;
      let s = Db.cache_stats db in
      Alcotest.(check bool) "served from the view"
        true (s.Db.view_hits >= 2)))

let suites =
  [ ( "plancache",
      [ test_roundtrip; test_dollar_rejected; test_bind_identity;
        test_faults_stand_down; test_bind_hit; test_toggle; test_plan_quota;
        test_invalidation; test_guard_trip; test_normalize;
        test_matview_shape_routing ] ) ]
