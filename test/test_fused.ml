(** Differential tests for the fused branch-free filter→aggregate kernels.

    Every query runs twice on a cache-disabled database — fused kernels
    forced on and forced off — across both backends and 1/3 threads, and
    the answers must be byte-identical at rendering: the fused mask-based
    accumulators replay the exact floating-point update sequence of the
    unfused per-row updaters, so even the low bits of compensated float
    sums may not move. Datasets are chosen to hit every kernel path:
    all-true and all-false predicates (mask fill with no survivors /
    nothing rejected), heavy selectivity skew, NULLs in both filter and
    aggregate position, dictionary-coded string predicates (eq / ne /
    LIKE / IN), date MIN/MAX, arithmetic aggregate arguments including
    division (which forces the branchy accumulate to avoid NaN
    poisoning), and grouped aggregation over int / dict / nullable keys.
    Tables exceed 4096 rows so the vectorized filter kernel engages. A
    fault soak re-runs a fused aggregate under armed injection: the
    kernel.filter / kernel.agg checkpoints must recover to the clean
    answer. *)

open Sqldb
open Helpers

(* Run [f] with the fused kernels forced on or off, restoring the global
   toggle afterwards. *)
let with_fuse enabled (f : unit -> 'a) : 'a =
  let saved = Kernel.fuse_enabled () in
  Fun.protect
    ~finally:(fun () -> Kernel.set_fuse saved)
    (fun () ->
      Kernel.set_fuse enabled;
      f ())

(* Exact ordered row rendering — [Relation.canonical] rounds floats, which
   would mask a low-bit divergence between fused and unfused sums. *)
let ordered_rows (r : Relation.t) : string list =
  List.init (Relation.n_rows r) (fun i ->
      String.concat "|"
        (Array.to_list (Array.map Value.to_string (Relation.row r i))))

(* Filter and global-aggregate output order is an invariant (survivor
   order / single row) and compares exactly. GROUP BY output order is
   first-seen on the compiled path but slot-order on the vectorized dense
   path, so grouped answers compare as sorted multisets — still with
   exact cell rendering. *)
let has_group_by sql =
  let pat = "GROUP BY" in
  let n = String.length sql and m = String.length pat in
  let rec go i = i + m <= n && (String.sub sql i m = pat || go (i + 1)) in
  go 0

let backends = [ Db.Vectorized; Db.Compiled ]
let thread_counts = [ 1; 3 ]

let diff_queries ~label (db : Db.t) (queries : string list) =
  let saved_cache = Db.cache_enabled_now () in
  Fun.protect
    ~finally:(fun () -> Db.set_cache_enabled saved_cache)
    (fun () ->
      (* a cached result from one configuration would satisfy the other
         without executing it, defeating the differential *)
      Db.set_cache_enabled false;
      List.iter
        (fun sql ->
          List.iter
            (fun backend ->
              List.iter
                (fun threads ->
                  let base =
                    with_fuse false (fun () ->
                        Db.execute ~backend ~threads db sql)
                  in
                  let fused =
                    with_fuse true (fun () ->
                        Db.execute ~backend ~threads db sql)
                  in
                  let render r =
                    let rows = ordered_rows r in
                    if has_group_by sql then List.sort String.compare rows
                    else rows
                  in
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s %s @%dt | %s" label
                       (Db.backend_name backend) threads sql)
                    (render base) (render fused))
                thread_counts)
            backends)
        queries)

(* ------------------------------------------------------------------ *)
(* Dataset                                                            *)
(* ------------------------------------------------------------------ *)

(* One wide table past the 4096-row kernel threshold: skewed int keys,
   mixed-magnitude floats (so compensation actually matters), a small
   dict-coded string alphabet, nullable float and int columns, dates,
   and a nonzero divisor column for SUM(x / y). *)
let fused_db () =
  let rand = Random.State.make [| 0xf05ed |] in
  let n = 12_000 in
  let tags = [| "alpha"; "beta"; "gamma"; "delta"; "albatross" |] in
  let db = Db.create () in
  Db.load_table db "t"
    (rel [ "id"; "k"; "v"; "a"; "b"; "tag"; "nv"; "nk"; "d" ]
       [ ints (Array.init n Fun.id);
         ints
           (Array.init n (fun _ ->
                if Random.State.int rand 10 < 8 then Random.State.int rand 20
                else Random.State.int rand 97));
         floats
           (Array.init n (fun i ->
                if i mod 101 = 0 then 1e12
                else float_of_int ((i * 7 mod 1000) - 500) /. 7.));
         ints (Array.init n (fun i -> (i * 13 mod 2001) - 1000));
         ints (Array.init n (fun i -> (i mod 9) + 1));
         strings (Array.init n (fun _ -> tags.(Random.State.int rand 5)));
         Column.of_values Value.TFloat
           (Array.init n (fun i ->
                if i mod 7 = 0 then Value.VNull
                else Value.VFloat (float_of_int (i mod 83) /. 3.)));
         Column.of_values Value.TInt
           (Array.init n (fun i ->
                if i mod 11 = 0 then Value.VNull else Value.VInt (i mod 6)));
         dates
           (Array.init n (fun i ->
                Printf.sprintf "%04d-%02d-%02d"
                  (1992 + (i mod 7))
                  ((i mod 12) + 1)
                  ((i mod 28) + 1))) ]);
  db

(* ------------------------------------------------------------------ *)
(* Query shapes                                                       *)
(* ------------------------------------------------------------------ *)

let global_agg_queries =
  [ "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k < 40";
    "SELECT SUM(a) AS s, MIN(a) AS mn, MAX(a) AS mx FROM t WHERE k >= 40";
    "SELECT AVG(v) AS av, AVG(a) AS ai FROM t WHERE tag = 'alpha'";
    "SELECT SUM(v / b) AS s FROM t WHERE k <> 13";
    "SELECT SUM(a * b) AS p, SUM(a + b) AS q FROM t WHERE tag <> 'beta'";
    "SELECT SUM(nv) AS s, AVG(nv) AS av FROM t WHERE k < 50";
    "SELECT MIN(d) AS mn, MAX(d) AS mx FROM t WHERE k < 90";
    "SELECT MIN(v) AS mn, MAX(v) AS mx FROM t WHERE tag LIKE 'al%'";
    (* all-true and all-false predicates: every stride fully kept /
       fully rejected *)
    "SELECT SUM(v) AS s, COUNT(*) AS n FROM t WHERE k >= 0";
    "SELECT SUM(v) AS s, COUNT(*) AS n FROM t WHERE k < -1";
    "SELECT COUNT(*) AS n FROM t WHERE nv IS NULL";
    "SELECT COUNT(*) AS n, SUM(b) AS s FROM t WHERE NOT (k < 10) OR \
     tag = 'gamma'";
    "SELECT SUM(v) AS s FROM t WHERE tag IN ('alpha', 'delta') AND k < 60" ]

let grouped_queries =
  [ "SELECT tag, COUNT(*) AS n, SUM(v) AS s FROM t WHERE k < 60 GROUP BY tag";
    "SELECT k, SUM(a) AS s, MIN(v) AS mn FROM t GROUP BY k";
    "SELECT nk, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY nk";
    "SELECT tag, AVG(v) AS av, MAX(d) AS mx FROM t WHERE id >= 100 \
     GROUP BY tag" ]

let filter_queries =
  [ "SELECT id FROM t WHERE k = 7";
    "SELECT id, tag FROM t WHERE tag = 'alpha' AND k < 30";
    "SELECT id FROM t WHERE nv IS NULL AND k > 90";
    "SELECT id FROM t WHERE NOT (tag = 'beta')";
    "SELECT id FROM t WHERE v > 50.0 OR k = 3";
    "SELECT id FROM t WHERE tag LIKE '%tros%' AND d >= DATE '1995-01-01'" ]

let test_global () = diff_queries ~label:"global" (fused_db ()) global_agg_queries
let test_grouped () = diff_queries ~label:"grouped" (fused_db ()) grouped_queries
let test_filters () = diff_queries ~label:"filter" (fused_db ()) filter_queries

(* Dict predicates must also agree with encoding disabled: raw string
   columns take the generic cmp-leaf path instead of the code tables. *)
let test_raw_strings () =
  let saved = Db.dict_encoding_enabled () in
  Fun.protect
    ~finally:(fun () -> Db.set_dict_encoding saved)
    (fun () ->
      Db.set_dict_encoding false;
      diff_queries ~label:"raw-strings" (fused_db ())
        [ "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE tag = 'alpha'";
          "SELECT SUM(a) AS s FROM t WHERE tag <> 'beta' AND k < 50";
          "SELECT id FROM t WHERE tag LIKE 'al%' AND k = 3" ])

(* And with the bigarray backing store disabled: the kernels' legacy
   int/float-array loops must produce the same masks and sums. *)
let test_legacy_arrays () =
  let saved = Column.bigarray_enabled () in
  Fun.protect
    ~finally:(fun () -> Column.set_bigarray saved)
    (fun () ->
      Column.set_bigarray false;
      diff_queries ~label:"legacy-arrays" (fused_db ())
        [ "SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k < 40";
          "SELECT SUM(v / b) AS s FROM t WHERE k <> 13";
          "SELECT tag, SUM(v) AS s FROM t WHERE k < 60 GROUP BY tag" ])

(* ------------------------------------------------------------------ *)
(* Compensated summation pins (Neumaier)                              *)
(* ------------------------------------------------------------------ *)

(* Adversarial magnitudes: +1e16 / +1 / -1e16 / tiny. A naive float sum
   loses the 1.0s entirely; the compensated serial sum recovers them
   exactly. The fused accumulator must match the unfused one *bitwise*
   at every thread count (it replays the identical update sequence), and
   the 3-thread chunked merge must agree with the serial sum to far
   below output rounding. *)
let test_neumaier_sum () =
  let n = 20_000 in
  let xs =
    Array.init n (fun i ->
        match i mod 4 with
        | 0 -> 1e16
        | 1 -> 1.0
        | 2 -> -1e16
        | _ -> float_of_int (i mod 13) *. 1e-3)
  in
  let db = Db.create () in
  Db.load_table db "adv" (rel [ "x" ] [ floats xs ]);
  (* serial Neumaier reference, the same update sequence as
     [Agg_util.acc_add_f] *)
  let sumf = ref 0. and sumc = ref 0. in
  Array.iter
    (fun x ->
      let s = !sumf in
      let t = s +. x in
      sumc := !sumc +. Agg_util.comp_step s x t;
      sumf := t)
    xs;
  let expect = !sumf +. !sumc in
  let sql = "SELECT SUM(x) AS s FROM adv" in
  let sum_of r =
    match (Relation.row r 0).(0) with
    | Value.VFloat f -> f
    | v -> Alcotest.failf "expected VFloat, got %s" (Value.to_string v)
  in
  let saved_cache = Db.cache_enabled_now () in
  Fun.protect
    ~finally:(fun () -> Db.set_cache_enabled saved_cache)
    (fun () ->
      Db.set_cache_enabled false;
      List.iter
        (fun backend ->
          List.iter
            (fun threads ->
              let off =
                with_fuse false (fun () ->
                    sum_of (Db.execute ~backend ~threads db sql))
              in
              let on =
                with_fuse true (fun () ->
                    sum_of (Db.execute ~backend ~threads db sql))
              in
              (* fused == unfused bit-for-bit at the same thread count *)
              Alcotest.(check int64)
                (Printf.sprintf "fused bits %s @%dt" (Db.backend_name backend)
                   threads)
                (Int64.bits_of_float off) (Int64.bits_of_float on);
              (* chunked vs serial: compensation keeps the merge within
                 noise of the exact serial result, while a naive chunked
                 sum here would be off by whole units *)
              Alcotest.(check (float 1e-6))
                (Printf.sprintf "serial agreement %s @%dt"
                   (Db.backend_name backend) threads)
                expect on)
            thread_counts)
        backends)

(* ------------------------------------------------------------------ *)
(* Environment configuration                                          *)
(* ------------------------------------------------------------------ *)

let test_env_config () =
  let saved = Kernel.fuse_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PYTOND_FUSE" "";
      Kernel.set_fuse saved)
    (fun () ->
      Unix.putenv "PYTOND_FUSE" "0";
      Kernel.configure_from_env ();
      Alcotest.(check bool) "PYTOND_FUSE=0 disables" false (Kernel.fuse_enabled ());
      Unix.putenv "PYTOND_FUSE" "1";
      Kernel.configure_from_env ();
      Alcotest.(check bool) "PYTOND_FUSE=1 enables" true (Kernel.fuse_enabled ()))

(* ------------------------------------------------------------------ *)
(* Faults soak: kernel checkpoints recover to the clean answer        *)
(* ------------------------------------------------------------------ *)

let test_faults_soak () =
  let saved_cache = Db.cache_enabled_now () in
  Fun.protect
    ~finally:(fun () ->
      Db.set_cache_enabled saved_cache;
      Faults.arm_from_env ())
    (fun () ->
      Db.set_cache_enabled false;
      let db = fused_db () in
      let sql =
        "SELECT tag, COUNT(*) AS n, SUM(v) AS s FROM t WHERE k < 60 \
         GROUP BY tag"
      in
      with_fuse true (fun () ->
          Faults.disarm ();
          let reference = Db.execute ~threads:3 db sql in
          List.iter
            (fun backend ->
              List.iter
                (fun seed ->
                  Faults.arm ~seed ();
                  let r = Db.execute ~backend ~threads:3 db sql in
                  check_rel
                    (Printf.sprintf "%s seed=%d" (Db.backend_name backend)
                       seed)
                    reference r)
                [ 7; 19; 31 ])
            backends))

let suites =
  [ ( "fused-differential",
      [ tc "global aggregates" test_global;
        tc "grouped aggregates" test_grouped;
        tc "filter kernels" test_filters;
        tc "raw string predicates" test_raw_strings;
        tc "legacy array backing" test_legacy_arrays ] );
    ( "fused-sums",
      [ tc "neumaier chunked vs serial" test_neumaier_sum ] );
    ( "fused-config",
      [ tc "env toggles" test_env_config;
        tc "fault recovery with kernels on" test_faults_soak ] ) ]
