(** Service-layer tests: the multi-tenant {!Sqldb.Server} (admission
    control, per-tenant caps, retry, circuit breaker), snapshot-isolated
    ingest, per-table cache invalidation, guard isolation across domains,
    and the typed exit-code contract.

    The centrepiece is a concurrent soak: client domains hammer mixed TPC-H
    queries through the server while a writer appends into [lineitem] and
    the fault registry injects crashes/corruption. Every response must be
    either a correct result — consistent with exactly one catalog snapshot,
    differentially checked against serial execution on each pinned version —
    or a typed error. No crash, no torn read, no unbounded queue. *)

open Sqldb

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------------------------ *)
(* Small synthetic servers: pin the admission/retry/breaker machinery  *)
(* ------------------------------------------------------------------ *)

(* Poll server stats until [pred] holds; the soak's synchronization needs
   are coarse (did N submissions land?), so polling keeps the tests free of
   extra signalling plumbing. *)
let wait_for ?(timeout_s = 5.) server pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred (Server.stats server) then ()
    else if Unix.gettimeofday () -. t0 > timeout_s then
      Alcotest.fail "wait_for: condition not reached"
    else begin
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let test_queue_shed () =
  (* one worker parked on a gate; queue_cap 2 admitted behind it; the next
     submit must shed with a positive retry-after hint *)
  let gate = Semaphore.Counting.make 0 in
  let exec ~tenant:_ ~fallback:_ () = Semaphore.Counting.acquire gate in
  let server = Server.create ~workers:1 ~queue_cap:2 ~exec () in
  let submit_bg name =
    Domain.spawn (fun () -> Server.submit server ~tenant:name ())
  in
  let d1 = submit_bg "a" in
  (* the worker has the first job when a second submission can only queue *)
  wait_for server (fun s -> s.Server.submitted >= 1);
  let d2 = submit_bg "b" in
  let d3 = submit_bg "c" in
  wait_for server (fun s -> s.Server.submitted >= 3);
  (match Server.submit server ~tenant:"d" () with
  | Error (Server.Overloaded { scope; retry_after_ms }) ->
    Alcotest.(check string) "shed at the server queue" "server" scope;
    Alcotest.(check bool) "retry-after hint" true (retry_after_ms > 0)
  | Ok _ -> Alcotest.fail "expected Overloaded, got Ok"
  | Error e -> Alcotest.fail ("expected Overloaded, got " ^ Printexc.to_string e));
  Semaphore.Counting.release gate;
  Semaphore.Counting.release gate;
  Semaphore.Counting.release gate;
  List.iter
    (fun d ->
      match Domain.join d with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printexc.to_string e))
    [ d1; d2; d3 ];
  let s = Server.stats server in
  Alcotest.(check int) "one rejection" 1 s.Server.rejected;
  Alcotest.(check bool) "queue stayed bounded" true
    (s.Server.max_depth <= 2);
  Server.stop server

let test_tenant_cap () =
  let gate = Semaphore.Counting.make 0 in
  let exec ~tenant:_ ~fallback:_ () = Semaphore.Counting.acquire gate in
  let policy = { Tenant.default_policy with Tenant.max_in_flight = 1 } in
  let server =
    Server.create ~workers:4 ~queue_cap:32 ~default_policy:policy ~exec ()
  in
  let d1 = Domain.spawn (fun () -> Server.submit server ~tenant:"acme" ()) in
  wait_for server (fun s -> s.Server.submitted >= 1);
  (match Server.submit server ~tenant:"acme" () with
  | Error (Server.Overloaded { scope; _ }) ->
    Alcotest.(check string) "shed at the tenant cap" "tenant:acme" scope
  | _ -> Alcotest.fail "expected tenant Overloaded");
  (* a different tenant has its own slots *)
  let d2 = Domain.spawn (fun () -> Server.submit server ~tenant:"zeta" ()) in
  wait_for server (fun s -> s.Server.submitted >= 2);
  Semaphore.Counting.release gate;
  Semaphore.Counting.release gate;
  Alcotest.(check bool) "first tenant finished" true
    (Result.is_ok (Domain.join d1));
  Alcotest.(check bool) "other tenant unaffected" true
    (Result.is_ok (Domain.join d2));
  (* slot released: the capped tenant admits again *)
  Semaphore.Counting.release gate;
  (match Server.submit server ~tenant:"acme" () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Printexc.to_string e));
  Server.stop server

let test_retry_transient () =
  let calls = Atomic.make 0 in
  let exec ~tenant:_ ~fallback:_ () =
    if Atomic.fetch_and_add calls 1 = 0 then
      raise (Faults.Injected { kind = Faults.Worker_crash; site = "test" })
    else "ok"
  in
  let server = Server.create ~workers:1 ~exec () in
  (match Server.submit server ~tenant:"t" () with
  | Ok o ->
    Alcotest.(check string) "recovered value" "ok" o.Server.value;
    Alcotest.(check int) "second attempt succeeded" 2 o.Server.attempts;
    Alcotest.(check bool) "on the primary engine" false o.Server.via_fallback
  | Error e -> Alcotest.fail (Printexc.to_string e));
  let ten = Option.get (Server.tenant server "t") in
  Alcotest.(check int) "retry counted" 1 (Tenant.stats ten).Tenant.s_retries;
  Server.stop server

let test_retry_budget_exhausted () =
  (* a fault that never stops firing must surface as the typed exception,
     after exactly policy.max_retries extra attempts *)
  let calls = Atomic.make 0 in
  let exec ~tenant:_ ~fallback:_ () =
    Atomic.incr calls;
    raise (Faults.Injected { kind = Faults.Dict_corrupt; site = "test" })
  in
  let policy = { Tenant.default_policy with Tenant.max_retries = 2 } in
  let server = Server.create ~workers:1 ~default_policy:policy ~exec () in
  (match Server.submit server ~tenant:"t" () with
  | Error (Faults.Injected _) -> ()
  | Ok _ -> Alcotest.fail "expected the injected fault to surface"
  | Error e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e));
  Alcotest.(check int) "1 attempt + 2 retries" 3 (Atomic.get calls);
  Server.stop server

let test_breaker_fallback () =
  let exec ~tenant:_ ~fallback () =
    if fallback then "fallback" else failwith "primary down"
  in
  let policy =
    { Tenant.default_policy with
      Tenant.breaker_threshold = 3;
      breaker_cooldown_ms = 60_000. }
  in
  let server = Server.create ~workers:1 ~default_policy:policy ~exec () in
  for i = 1 to 3 do
    match Server.submit server ~tenant:"t" () with
    | Error (Failure _) -> ()
    | _ -> Alcotest.fail (Printf.sprintf "submit %d: expected primary failure" i)
  done;
  (* threshold reached: the tenant now rides the fallback engine *)
  (match Server.submit server ~tenant:"t" () with
  | Ok o ->
    Alcotest.(check string) "served by fallback" "fallback" o.Server.value;
    Alcotest.(check bool) "flagged as fallback" true o.Server.via_fallback
  | Error e -> Alcotest.fail (Printexc.to_string e));
  let ten = Option.get (Server.tenant server "t") in
  let ts = Tenant.stats ten in
  Alcotest.(check bool) "breaker open" true ts.Tenant.s_breaker_open;
  Alcotest.(check int) "fallback counted" 1 ts.Tenant.s_fallbacks;
  (* other tenants' breakers are independent *)
  (match Server.submit server ~tenant:"fresh" () with
  | Error (Failure _) -> ()
  | _ -> Alcotest.fail "fresh tenant should still probe the primary");
  Server.stop server

(* ------------------------------------------------------------------ *)
(* Snapshot-isolated ingest + per-table cache invalidation             *)
(* ------------------------------------------------------------------ *)

let two_table_db () =
  let db = Db.create () in
  Db.load_table db "a"
    (Helpers.rel [ "x"; "grp" ]
       [ Helpers.ints [| 1; 2; 3; 4 |]; Helpers.ints [| 0; 1; 0; 1 |] ]);
  Db.load_table db "b"
    (Helpers.rel [ "y" ] [ Helpers.ints [| 10; 20 |] ]);
  db

(* the cache stands down while faults are armed, so pin it on for these *)
let with_clean_cache f () =
  let saved = Db.cache_enabled_now () in
  let refault = Faults.armed () in
  Faults.disarm ();
  Fun.protect
    ~finally:(fun () ->
      Db.set_cache_enabled saved;
      if refault then Faults.arm_from_env ())
    (fun () ->
      Db.set_cache_enabled true;
      f ())

let q_a = "SELECT SUM(x) AS s FROM a"

let test_cache_survives_unrelated_ingest =
  with_clean_cache (fun () ->
      let db = two_table_db () in
      let r1 = Db.execute db q_a in
      ignore (Db.execute db q_a);
      (* ingest into b: a's entry must keep both plan and result *)
      Db.append_table db "b" (Helpers.rel [ "y" ] [ Helpers.ints [| 30 |] ]);
      let r3 = Db.execute db q_a in
      Helpers.check_rel "unrelated ingest preserves the cached result" r1 r3;
      let cs = Db.cache_stats db in
      Alcotest.(check int) "two full hits" 2 cs.Db.hits;
      Alcotest.(check int) "no plan-level rebinds" 0 cs.Db.plan_hits;
      Alcotest.(check int) "one miss (first run)" 1 cs.Db.misses;
      Alcotest.(check int) "entry retained" 1 cs.Db.entries)

let test_cache_plan_reuse_on_append =
  with_clean_cache (fun () ->
      let db = two_table_db () in
      ignore (Db.execute db q_a);
      Db.append_table db "a" (Helpers.rel [ "x"; "grp" ]
          [ Helpers.ints [| 10 |]; Helpers.ints [| 0 |] ]);
      let r = Db.execute db q_a in
      Alcotest.(check (list string))
        "re-executed result sees the appended rows"
        [ "20" ] (Relation.canonical ~digits:0 r);
      let cs = Db.cache_stats db in
      Alcotest.(check int) "append reuses the bound plan" 1 cs.Db.plan_hits;
      Alcotest.(check int) "no new miss" 1 cs.Db.misses;
      (* the re-stamped entry is a full hit again *)
      ignore (Db.execute db q_a);
      Alcotest.(check int) "hit after re-stamp" 1 (Db.cache_stats db).Db.hits)

let test_cache_dropped_on_replace =
  with_clean_cache (fun () ->
      let db = two_table_db () in
      ignore (Db.execute db q_a);
      (* replace may change the schema: the entry must be dropped outright *)
      Db.load_table db "a"
        (Helpers.rel [ "x"; "grp" ]
           [ Helpers.ints [| 7 |]; Helpers.ints [| 0 |] ]);
      let r = Db.execute db q_a in
      Alcotest.(check (list string))
        "fresh plan over the replaced table" [ "7" ]
        (Relation.canonical ~digits:0 r);
      let cs = Db.cache_stats db in
      Alcotest.(check int) "replace forces a miss" 2 cs.Db.misses;
      Alcotest.(check int) "no plan reuse across replace" 0 cs.Db.plan_hits)

let test_tenant_cache_quota =
  with_clean_cache (fun () ->
      let db = two_table_db () in
      let run owner sql = ignore (Db.execute ~owner ~cache_quota:2 db sql) in
      run "small" "SELECT SUM(x) AS s FROM a";
      run "small" "SELECT SUM(grp) AS s FROM a";
      run "small" "SELECT SUM(y) AS s FROM b";
      (* quota 2: the third insert evicted one of small's earlier entries *)
      let cs = Db.cache_stats db in
      Alcotest.(check int) "quota evicted the tenant's own LRU entry" 1
        cs.Db.evictions;
      Alcotest.(check int) "tenant holds at most its quota" 2 cs.Db.entries)

let test_snapshot_pin =
  with_clean_cache (fun () ->
      let db = two_table_db () in
      let before = Db.snapshot db in
      Db.append_table db "a"
        (Helpers.rel [ "x"; "grp" ]
           [ Helpers.ints [| 100 |]; Helpers.ints [| 1 |] ]);
      Alcotest.(check (list string))
        "pinned snapshot still sees the old version" [ "10" ]
        (Relation.canonical ~digits:0 (Db.execute before q_a));
      Alcotest.(check (list string))
        "live handle sees the append" [ "110" ]
        (Relation.canonical ~digits:0 (Db.execute db q_a)))

let test_guard_isolation () =
  (* two concurrent queries on separate domains: a 0ms-deadline guard must
     trip its own query and leave the neighbour's untouched — the DLS
     refactor's whole point *)
  let db = two_table_db () in
  let victim =
    Domain.spawn (fun () ->
        match Db.execute ~timeout_ms:0 db q_a with
        | exception Guard.Trip { reason = Guard.Timeout; _ } -> `Tripped
        | _ -> `Survived)
  in
  let bystander =
    Domain.spawn (fun () -> Relation.canonical ~digits:0 (Db.execute db q_a))
  in
  Alcotest.(check bool) "guarded query tripped" true
    (Domain.join victim = `Tripped);
  Alcotest.(check (list string))
    "unguarded neighbour unaffected" [ "10" ] (Domain.join bystander)

(* ------------------------------------------------------------------ *)
(* Typed exit codes                                                   *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let code_of exn =
    match Pytond.Errors.of_exn exn with
    | Some e -> Pytond.Errors.exit_code e
    | None -> Alcotest.fail "exception did not classify"
  in
  Alcotest.(check int) "timeout -> 2" 2
    (code_of (Guard.Trip { reason = Guard.Timeout; detail = "t" }));
  Alcotest.(check int) "row budget -> 2" 2
    (code_of (Guard.Trip { reason = Guard.Row_budget; detail = "t" }));
  Alcotest.(check int) "overloaded -> 3" 3
    (code_of (Server.Overloaded { scope = "server"; retry_after_ms = 7 }));
  Alcotest.(check int) "plan error -> 1" 1
    (code_of (Sql_parse.Parse_error "nope"));
  Alcotest.(check int) "escaped fault -> 1" 1
    (code_of (Faults.Injected { kind = Faults.Dict_corrupt; site = "s" }))

(* ------------------------------------------------------------------ *)
(* Concurrent soak                                                    *)
(* ------------------------------------------------------------------ *)

(* Boolean flavour of Helpers.check_rows_close: the soak compares each
   concurrent result against several candidate snapshots, so a mismatch is
   "try the next snapshot", not an immediate failure. *)
let rows_close (expected : string list) (actual : string list) : bool =
  let close a b =
    String.equal a b
    ||
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some x, Some y ->
      Float.abs (x -. y)
      <= 0.0016 +. (1e-6 *. Float.max (Float.abs x) (Float.abs y))
    | _ -> false
  in
  let row_close ra rb =
    let ca = String.split_on_char '|' ra in
    let cb = String.split_on_char '|' rb in
    List.length ca = List.length cb && List.for_all2 close ca cb
  in
  List.length expected = List.length actual
  && List.for_all2 row_close expected actual

let n_clients = 8
let queries_per_client = 26 (* 8 * 26 = 208 total *)
let n_appends = 3

let test_soak () =
  let db = Tpch.Dbgen.make_db 0.005 in
  (* compile the Python sources once; appends preserve schemas so the SQL
     stays valid across every snapshot *)
  let qs =
    List.map
      (fun q ->
        ( q,
          Pytond.compile ~dialect:"hyper" ~db ~source:(Tpch.Queries.find q)
            ~fname:"query" () ))
      [ "q1"; "q3"; "q12" ]
  in
  let batch =
    let li = Catalog.relation (Db.catalog db) "lineitem" in
    Relation.take li (Array.init (min 64 (Relation.n_rows li)) Fun.id)
  in
  (* reference handles: one per catalog version the soak can expose *)
  let snaps_lock = Mutex.create () in
  let snaps = ref [ Db.snapshot db ] in
  let exec ~tenant ~fallback sql =
    let backend = if fallback then Db.Vectorized else Db.Compiled in
    Db.execute ~threads:2 ~backend ~owner:tenant.Tenant.name db sql
  in
  let policy =
    { Tenant.default_policy with
      Tenant.max_in_flight = 6;
      max_retries = 3;
      breaker_threshold = 8 }
  in
  let server =
    Server.create ~workers:3 ~queue_cap:16 ~default_policy:policy ~exec ()
  in
  let saved_mode = Parallel.current_mode () in
  (* Simulated keeps chunk dispatch (and its injection points) inline, so
     the soak's domain population stays bounded at clients + workers *)
  Parallel.set_mode Parallel.Simulated;
  Faults.arm ~seed:20260808 ();
  let results = Array.make n_clients [] in
  let typed_errors = Atomic.make 0 in
  let untyped = ref [] in
  let untyped_lock = Mutex.create () in
  let overloads = Atomic.make 0 in
  Fun.protect
    ~finally:(fun () ->
      Faults.arm_from_env ();
      Parallel.set_mode saved_mode)
    (fun () ->
      let client ci () =
        for i = 0 to queries_per_client - 1 do
          let qname, sql = List.nth qs ((ci + i) mod List.length qs) in
          let tenant = "tenant" ^ string_of_int (ci mod 4) in
          let rec go tries =
            match Server.submit server ~tenant sql with
            | Ok o ->
              results.(ci) <-
                (qname, Relation.canonical ~digits:3 o.Server.value)
                :: results.(ci)
            | Error (Server.Overloaded { retry_after_ms; _ }) ->
              Atomic.incr overloads;
              if tries < 20 then begin
                Unix.sleepf (float_of_int (max 1 retry_after_ms) /. 1000.);
                go (tries + 1)
              end
              else Atomic.incr typed_errors
            | Error e -> (
              match Pytond.Errors.of_exn e with
              | Some _ -> Atomic.incr typed_errors
              | None ->
                Mutex.lock untyped_lock;
                untyped := Printexc.to_string e :: !untyped;
                Mutex.unlock untyped_lock)
          in
          go 0
        done
      in
      let writer () =
        for _ = 1 to n_appends do
          Unix.sleepf 0.08;
          Db.append_table db "lineitem" batch;
          Mutex.lock snaps_lock;
          snaps := Db.snapshot db :: !snaps;
          Mutex.unlock snaps_lock
        done
      in
      let doms =
        Domain.spawn writer :: List.init n_clients (fun ci -> Domain.spawn (client ci))
      in
      List.iter Domain.join doms;
      Server.stop server);
  (* ---- assertions ---- *)
  Alcotest.(check (list string)) "no untyped escapes" [] !untyped;
  let s = Server.stats server in
  Alcotest.(check bool) "queue stayed within its bound" true
    (s.Server.max_depth <= 16);
  let answered = Array.fold_left (fun n l -> n + List.length l) 0 results in
  Alcotest.(check int) "every query answered or typed-failed"
    (n_clients * queries_per_client)
    (answered + Atomic.get typed_errors);
  Alcotest.(check bool) "soak actually completed work" true (answered > 0);
  (* differential: serial references on every pinned snapshot, faults off *)
  let references =
    List.concat_map
      (fun snap ->
        List.map
          (fun (qname, sql) ->
            (qname, Relation.canonical ~digits:3 (Db.execute ~backend:Db.Compiled snap sql)))
          qs)
      !snaps
  in
  Array.iteri
    (fun ci lst ->
      List.iter
        (fun (qname, rows) ->
          let ok =
            List.exists
              (fun (rq, rrows) -> rq = qname && rows_close rrows rows)
              references
          in
          if not ok then
            Alcotest.fail
              (Printf.sprintf
                 "client %d: %s result matches no catalog snapshot (%d refs)"
                 ci qname (List.length references)))
        lst)
    results

let suites =
  [ ( "server",
      [ tc "queue shedding with retry-after" test_queue_shed;
        tc "per-tenant in-flight cap" test_tenant_cap;
        tc "transient retry succeeds" test_retry_transient;
        tc "retry budget exhausts to typed error" test_retry_budget_exhausted;
        tc "circuit breaker falls back" test_breaker_fallback ] );
    ( "server-cache",
      [ tc "entries survive unrelated ingest" test_cache_survives_unrelated_ingest;
        tc "append reuses plan, re-executes" test_cache_plan_reuse_on_append;
        tc "replace drops entries" test_cache_dropped_on_replace;
        tc "per-tenant cache quota" test_tenant_cache_quota ] );
    ( "server-snapshot",
      [ tc "pinned snapshot isolated from ingest" test_snapshot_pin;
        tc "guards are domain-local" test_guard_isolation ] );
    ("server-exit-codes", [ tc "typed exit codes" test_exit_codes ]);
    ("server-soak", [ Alcotest.test_case "concurrent mixed soak" `Slow test_soak ])
  ]
