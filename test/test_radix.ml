(** Differential tests for radix-partitioned join/aggregation execution.

    Every query runs twice on a cache-disabled database: once with radix
    partitioning forced on every join ([Radix.set_min_rows 0]) and once
    with it disabled outright. Join answers must be identical — not just
    as sets but row-for-row in output order, because downstream operators
    (window functions, positional tensor lowering) key on join output
    order; GROUP BY answers compare as multisets since aggregate output
    order is not an invariant across partitioning schemes. Datasets are chosen adversarially: heavy key skew,
    all-null keys, dictionary-coded string keys, and key ranges that leave
    most radix partitions empty. Join shapes cover inner, left/right/full
    outer, and semi/anti (EXISTS / NOT EXISTS). A final soak re-runs a
    radix-heavy query under armed fault injection: the scatter and
    per-partition build checkpoints must recover to the exact clean
    answer. *)

open Sqldb
open Helpers

(* Run [f] under a forced radix configuration, restoring the global
   toggles afterwards. [`Forced] also drops the row threshold to zero so
   even tiny test tables take the partitioned path at 1 thread. *)
let with_radix mode (f : unit -> 'a) : 'a =
  let saved_enabled = Radix.enabled () and saved_min = Radix.min_rows () in
  Fun.protect
    ~finally:(fun () ->
      Radix.set_enabled saved_enabled;
      Radix.set_min_rows saved_min)
    (fun () ->
      (match mode with
      | `Forced ->
        Radix.set_enabled true;
        Radix.set_min_rows 0
      | `Off -> Radix.set_enabled false);
      f ())

(* Exact ordered row rendering — [Relation.canonical] sorts, which would
   mask an order-changing bug in the partition-merge scatter. *)
let ordered_rows (r : Relation.t) : string list =
  List.init (Relation.n_rows r) (fun i ->
      String.concat "|"
        (Array.to_list (Array.map Value.to_string (Relation.row r i))))

(* Join output order is an implementation invariant (probe order, matches
   ascending) and is compared exactly. GROUP BY output order is not: radix
   aggregation emits partition-major while the single-table path emits in
   first-seen order, so aggregate results compare as multisets. *)
let has_group_by sql =
  let pat = "GROUP BY" in
  let n = String.length sql and m = String.length pat in
  let rec go i = i + m <= n && (String.sub sql i m = pat || go (i + 1)) in
  go 0

let backends = [ Db.Vectorized; Db.Compiled ]
let thread_counts = [ 1; 3 ]

let diff_queries ~label (db : Db.t) (queries : string list) =
  let saved_cache = Db.cache_enabled_now () in
  Fun.protect
    ~finally:(fun () -> Db.set_cache_enabled saved_cache)
    (fun () ->
      (* a cached result from one configuration would satisfy the other
         without executing it, defeating the differential *)
      Db.set_cache_enabled false;
      List.iter
        (fun sql ->
          List.iter
            (fun backend ->
              List.iter
                (fun threads ->
                  let base =
                    with_radix `Off (fun () ->
                        Db.execute ~backend ~threads db sql)
                  in
                  let rad =
                    with_radix `Forced (fun () ->
                        Db.execute ~backend ~threads db sql)
                  in
                  let render r =
                    let rows = ordered_rows r in
                    if has_group_by sql then List.sort String.compare rows
                    else rows
                  in
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s %s @%dt | %s" label
                       (Db.backend_name backend) threads sql)
                    (render base) (render rad))
                thread_counts)
            backends)
        queries)

(* ------------------------------------------------------------------ *)
(* Datasets                                                           *)
(* ------------------------------------------------------------------ *)

let load db name names cols = Db.load_table db name (rel names cols)

(* 90% of probe rows share one key; build side covers the key range with
   duplicates, so one partition carries almost all the probe traffic. *)
let skewed_db () =
  let rand = Random.State.make [| 0xad1e5 |] in
  let n = 6000 in
  let db = Db.create () in
  load db "probe" [ "id"; "k"; "v" ]
    [ ints (Array.init n Fun.id);
      ints
        (Array.init n (fun _ ->
             if Random.State.int rand 10 < 9 then 7
             else Random.State.int rand 100));
      floats (Array.init n (fun i -> float_of_int (i mod 37))) ];
  load db "build" [ "k"; "w"; "tag" ]
    [ ints (Array.init 220 (fun i -> i mod 110));
      ints (Array.init 220 (fun i -> i * 3));
      strings (Array.init 220 (fun i -> Printf.sprintf "t%d" (i mod 7))) ];
  db

(* Null keys must never match (inner/semi drop them, outer pads them) and
   must not be scattered into any partition. *)
let nullkey_db () =
  let n = 3000 in
  let key i =
    if i mod 3 = 0 then Value.VNull else Value.VInt (i mod 50)
  in
  let db = Db.create () in
  load db "probe" [ "id"; "k" ]
    [ ints (Array.init n Fun.id);
      Column.of_values Value.TInt (Array.init n key) ];
  load db "build" [ "k"; "w" ]
    [ Column.of_values Value.TInt
        (Array.init 100 (fun i ->
             if i mod 4 = 0 then Value.VNull else Value.VInt (i mod 50)));
      ints (Array.init 100 (fun i -> i * 10)) ];
  (* an all-null build side: every partition table is empty *)
  load db "allnull" [ "k"; "z" ]
    [ Column.of_values Value.TInt (Array.make 500 Value.VNull);
      ints (Array.init 500 Fun.id) ];
  db

(* String keys from a small alphabet dict-encode at ingest; the radix hash
   must route codes by decoded value so both physical layouts agree. *)
let dictkey_db () =
  let rand = Random.State.make [| 0xd1c7 |] in
  let tags = [| "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" |] in
  let n = 4000 in
  let db = Db.create () in
  load db "probe" [ "id"; "k" ]
    [ ints (Array.init n Fun.id);
      strings (Array.init n (fun _ -> tags.(Random.State.int rand 6))) ];
  load db "build" [ "k"; "w" ]
    [ strings [| "alpha"; "gamma"; "epsilon"; "omega" |];
      ints [| 1; 2; 3; 4 |] ];
  db

(* Keys that are multiples of 64 leave the low radix bits constant: with
   few partition bits most partitions are empty, exercising the
   empty-partition path of build and probe. *)
let sparse_db () =
  let n = 4096 in
  let db = Db.create () in
  load db "probe" [ "id"; "k" ]
    [ ints (Array.init n Fun.id); ints (Array.init n (fun i -> i / 8 * 64)) ];
  load db "build" [ "k"; "w" ]
    [ ints (Array.init 32 (fun i -> i * 64 * 4));
      ints (Array.init 32 Fun.id) ];
  db

(* ------------------------------------------------------------------ *)
(* Query shapes                                                       *)
(* ------------------------------------------------------------------ *)

let int_key_queries =
  [ "SELECT p.id, p.k, b.w FROM probe AS p, build AS b WHERE p.k = b.k";
    "SELECT p.k, COUNT(*) AS n FROM probe AS p, build AS b \
     WHERE p.k = b.k GROUP BY p.k";
    "SELECT p.id, b.w FROM probe AS p LEFT JOIN build AS b ON p.k = b.k";
    "SELECT p.id, b.w FROM probe AS p RIGHT JOIN build AS b ON p.k = b.k";
    "SELECT COUNT(*) AS n FROM probe AS p FULL JOIN build AS b ON p.k = b.k";
    "SELECT p.id FROM probe AS p WHERE EXISTS \
     (SELECT * FROM build AS b WHERE b.k = p.k)";
    "SELECT p.id FROM probe AS p WHERE NOT EXISTS \
     (SELECT * FROM build AS b WHERE b.k = p.k)" ]

let test_skewed () =
  diff_queries ~label:"skewed" (skewed_db ())
    (int_key_queries
    @ [ "SELECT b.tag, COUNT(*) AS n, SUM(p.v) AS s FROM probe AS p, \
         build AS b WHERE p.k = b.k GROUP BY b.tag" ])

let test_null_keys () =
  diff_queries ~label:"nullkey" (nullkey_db ())
    (int_key_queries
    @ [ "SELECT p.id, a.z FROM probe AS p, allnull AS a WHERE p.k = a.k";
        "SELECT p.id, a.z FROM probe AS p LEFT JOIN allnull AS a \
         ON p.k = a.k";
        "SELECT p.id FROM probe AS p WHERE NOT EXISTS \
         (SELECT * FROM allnull AS a WHERE a.k = p.k)" ])

let test_dict_keys () =
  diff_queries ~label:"dictkey" (dictkey_db ())
    [ "SELECT p.id, b.w FROM probe AS p, build AS b WHERE p.k = b.k";
      "SELECT p.k, COUNT(*) AS n FROM probe AS p, build AS b \
       WHERE p.k = b.k GROUP BY p.k";
      "SELECT p.id, b.w FROM probe AS p LEFT JOIN build AS b ON p.k = b.k";
      "SELECT p.id FROM probe AS p WHERE EXISTS \
       (SELECT * FROM build AS b WHERE b.k = p.k)";
      "SELECT p.id FROM probe AS p WHERE NOT EXISTS \
       (SELECT * FROM build AS b WHERE b.k = p.k)" ]

let test_sparse () = diff_queries ~label:"sparse" (sparse_db ()) int_key_queries

(* Dict-key differential must also hold with encoding disabled: raw string
   keys take the decode hash path. *)
let test_dict_keys_raw () =
  let saved = Db.dict_encoding_enabled () in
  Fun.protect
    ~finally:(fun () -> Db.set_dict_encoding saved)
    (fun () ->
      Db.set_dict_encoding false;
      diff_queries ~label:"dictkey-raw" (dictkey_db ())
        [ "SELECT p.id, b.w FROM probe AS p, build AS b WHERE p.k = b.k";
          "SELECT p.id, b.w FROM probe AS p LEFT JOIN build AS b \
           ON p.k = b.k" ])

(* ------------------------------------------------------------------ *)
(* Environment configuration                                          *)
(* ------------------------------------------------------------------ *)

let test_env_config () =
  let saved_enabled = Radix.enabled () and saved_min = Radix.min_rows () in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PYTOND_RADIX" "";
      Unix.putenv "PYTOND_RADIX_MIN" "";
      Radix.set_enabled saved_enabled;
      Radix.set_min_rows saved_min)
    (fun () ->
      Unix.putenv "PYTOND_RADIX" "0";
      Unix.putenv "PYTOND_RADIX_MIN" "123";
      Radix.configure_from_env ();
      Alcotest.(check bool) "PYTOND_RADIX=0 disables" false (Radix.enabled ());
      Alcotest.(check int) "PYTOND_RADIX_MIN overrides" 123 (Radix.min_rows ());
      Unix.putenv "PYTOND_RADIX" "1";
      Unix.putenv "PYTOND_RADIX_MIN" "";
      Radix.configure_from_env ();
      Alcotest.(check bool) "PYTOND_RADIX=1 enables" true (Radix.enabled ()))

(* ------------------------------------------------------------------ *)
(* Faults soak: scatter/build checkpoints recover to the clean answer  *)
(* ------------------------------------------------------------------ *)

let test_faults_soak () =
  let saved_cache = Db.cache_enabled_now () in
  Fun.protect
    ~finally:(fun () ->
      Db.set_cache_enabled saved_cache;
      Faults.arm_from_env ())
    (fun () ->
      Db.set_cache_enabled false;
      let db = skewed_db () in
      let sql =
        "SELECT b.tag, COUNT(*) AS n, SUM(p.v) AS s FROM probe AS p, \
         build AS b WHERE p.k = b.k GROUP BY b.tag"
      in
      with_radix `Forced (fun () ->
          Faults.disarm ();
          let reference = Db.execute ~threads:3 db sql in
          List.iter
            (fun backend ->
              List.iter
                (fun seed ->
                  Faults.arm ~seed ();
                  let r = Db.execute ~backend ~threads:3 db sql in
                  check_rel
                    (Printf.sprintf "%s seed=%d" (Db.backend_name backend)
                       seed)
                    reference r)
                [ 11; 23; 47 ])
            backends))

let suites =
  [ ( "radix-differential",
      [ tc "skewed keys" test_skewed;
        tc "null keys" test_null_keys;
        tc "dict-coded string keys" test_dict_keys;
        tc "raw string keys" test_dict_keys_raw;
        tc "sparse keys / empty partitions" test_sparse ] );
    ( "radix-config",
      [ tc "env toggles" test_env_config;
        tc "fault recovery under forced radix" test_faults_soak ] ) ]
