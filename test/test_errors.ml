(** Typed-error taxonomy tests: every malformed input fails with the right
    pipeline stage, and {!Pytond.run_auto} falls back to the interpreter
    exactly when the baseline can still answer (paper-level robustness: a
    program never crashes the process and never silently degrades). *)

open Helpers
module Errors = Pytond.Errors

(* Run [f]; return the typed error it raises. *)
let typed (f : unit -> 'a) : Errors.t =
  match f () with
  | _ -> Alcotest.fail "expected a Pytond.Error"
  | exception Pytond.Error e -> e

let check_stage msg expected (e : Errors.t) =
  Alcotest.(check string)
    msg
    (Errors.stage_name expected)
    (Errors.stage_name e.Errors.stage)

let check_code msg expected (e : Errors.t) =
  Alcotest.(check string) msg expected e.Errors.code

(* ------------------------------------------------------------------ *)
(* Frontend stages                                                    *)
(* ------------------------------------------------------------------ *)

let frontend_tests =
  [ tc "unterminated string is a lex error with a line" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db
                ~source:"@pytond\ndef query(orders):\n    x = 'oops\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Lex e;
        Alcotest.(check bool)
          "has line context" true
          (List.mem_assoc "line" e.Errors.context));
    tc "unexpected character is a lex error" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db ~source:"@pytond\ndef query(orders):\n    x = ?\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Lex e);
    tc "malformed syntax is a parse error with token context" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db ~source:"@pytond\ndef query((:\n    return 1\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Parse e;
        Alcotest.(check bool)
          "has token context" true
          (List.mem_assoc "token" e.Errors.context));
    tc "missing function is a parse-stage error" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db
                ~source:"@pytond\ndef other(orders):\n    return orders\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Parse e;
        check_code "code" "no-function" e);
    tc "missing @pytond decorator is a translate-stage error" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.compile ~db
                ~source:"def query(orders):\n    return orders\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Translate e;
        check_code "code" "no-decorator" e) ]

(* ------------------------------------------------------------------ *)
(* Translate stage                                                    *)
(* ------------------------------------------------------------------ *)

let translate_tests =
  [ tc "unknown column is a typed translate error" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db
                ~source:
                  "@pytond\ndef query(orders):\n\
                  \    return orders[orders['nope'] > 60.0]\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Translate e;
        check_code "code" "unsupported" e);
    tc "unknown table is a typed translate error" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db
                ~source:
                  "@pytond\ndef query(mystery):\n\
                  \    return mystery[mystery['x'] > 1.0]\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Translate e);
    tc "unsupported pandas op carries the API name" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~db
                ~source:
                  "@pytond\ndef query(orders):\n\
                  \    return orders.assign(d=orders['o_total'] * 2.0)\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Translate e;
        Alcotest.(check (option string))
          "api context" (Some "assign")
          (List.assoc_opt "api" e.Errors.context)) ]

(* ------------------------------------------------------------------ *)
(* run_auto fallback                                                  *)
(* ------------------------------------------------------------------ *)

let assign_src =
  "@pytond\ndef query(orders):\n\
  \    return orders.assign(double_total=orders['o_total'] * 2.0)\n"

let auto_tests =
  [ tc "unsupported op falls back to the interpreter" (fun () ->
        let db = mini_db () in
        let a = Pytond.run_auto ~db ~source:assign_src ~fname:"query" () in
        Alcotest.(check string)
          "engine" "interp"
          (Pytond.engine_name a.Pytond.engine);
        (match a.Pytond.fallback_reason with
        | Some e ->
          check_stage "fallback stage" Errors.Translate e;
          check_code "fallback code" "unsupported" e
        | None -> Alcotest.fail "expected a fallback reason");
        let expected = Pytond.run_python ~db ~source:assign_src ~fname:"query" () in
        check_rel "fallback result matches baseline" expected
          a.Pytond.relation);
    tc "supported program stays on the SQL engine" (fun () ->
        let db = mini_db () in
        let source =
          "@pytond\ndef query(orders):\n\
          \    return orders[orders['o_total'] > 60.0]\n"
        in
        let a = Pytond.run_auto ~db ~source ~fname:"query" () in
        Alcotest.(check bool)
          "no fallback" true
          (a.Pytond.fallback_reason = None);
        let expected = Pytond.run_python ~db ~source ~fname:"query" () in
        check_rel "sql result matches baseline" expected a.Pytond.relation);
    tc "parse errors do not fall back" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run_auto ~db ~source:"@pytond\ndef query((:\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Parse e);
    tc "fallback re-raises when the baseline also fails" (fun () ->
        (* unknown table: translation fails AND the interpreter has no
           binding for the parameter — the typed error must surface, not a
           crash from the fallback path *)
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run_auto ~db
                ~source:
                  "@pytond\ndef query(mystery):\n\
                  \    return mystery[mystery['x'] > 1.0]\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Exec e;
        check_code "code" "no-table" e) ]

(* ------------------------------------------------------------------ *)
(* Execution guards                                                   *)
(* ------------------------------------------------------------------ *)

let guard_tests =
  [ tc "timeout trips as a typed exec error and engine stays usable"
      (fun () ->
        let db = Tpch.Dbgen.make_db 0.005 in
        let source = Tpch.Queries.find "q1" in
        let e =
          typed (fun () ->
              Pytond.run ~timeout_ms:0 ~db ~source ~fname:"query" ())
        in
        check_stage "stage" Errors.Exec e;
        check_code "code" "timeout" e;
        (* the guard is cleared on unwind: the same query runs fine now *)
        let r = Pytond.run ~db ~source ~fname:"query" () in
        Alcotest.(check bool) "reusable" true (Sqldb.Relation.n_rows r > 0));
    tc "timeout trips the compiled backend too" (fun () ->
        let db = Tpch.Dbgen.make_db 0.005 in
        let e =
          typed (fun () ->
              Pytond.run ~backend:Pytond.Compiled ~timeout_ms:0 ~db
                ~source:(Tpch.Queries.find "q1") ~fname:"query" ())
        in
        check_code "code" "timeout" e);
    tc "row budget trips as a typed exec error" (fun () ->
        let db = mini_db () in
        let e =
          typed (fun () ->
              Pytond.run ~row_budget:1 ~db
                ~source:
                  "@pytond\ndef query(orders):\n\
                  \    return orders[orders['o_total'] > 60.0]\n"
                ~fname:"query" ())
        in
        check_stage "stage" Errors.Exec e;
        check_code "code" "row-budget" e);
    tc "run_auto rescues a timed-out query via the interpreter" (fun () ->
        let db = Tpch.Dbgen.make_db 0.002 in
        let a =
          Pytond.run_auto ~timeout_ms:0 ~db ~source:(Tpch.Queries.find "q6")
            ~fname:"query" ()
        in
        Alcotest.(check string)
          "engine" "interp"
          (Pytond.engine_name a.Pytond.engine);
        match a.Pytond.fallback_reason with
        | Some e -> check_code "reason" "timeout" e
        | None -> Alcotest.fail "expected a fallback reason") ]

(* ------------------------------------------------------------------ *)
(* Numeric edge cases: never crash, same answer everywhere            *)
(* ------------------------------------------------------------------ *)

let edge_tests =
  [ tc "division by zero yields a value, not a crash" (fun () ->
        let db = mini_db () in
        let r =
          execute_everywhere db "SELECT o_id, o_total / 0.0 AS r FROM orders"
        in
        Alcotest.(check int) "rows" 5 (Sqldb.Relation.n_rows r));
    tc "aggregate over the empty set yields a NULL row" (fun () ->
        let db = mini_db () in
        let r =
          execute_everywhere db
            "SELECT SUM(o_total) AS s FROM orders WHERE o_total > 1000000.0"
        in
        Alcotest.(check int) "one row" 1 (Sqldb.Relation.n_rows r));
    tc "Errors.of_exn classifies division by zero" (fun () ->
        match Errors.of_exn Division_by_zero with
        | Some e ->
          check_stage "stage" Errors.Exec e;
          check_code "code" "div-by-zero" e
        | None -> Alcotest.fail "expected a classification") ]

(* ------------------------------------------------------------------ *)
(* Parallel mode selection                                            *)
(* ------------------------------------------------------------------ *)

let parallel_tests =
  [ tc "PYTOND_PARALLEL selects the dispatch mode via force" (fun () ->
        let saved = Sqldb.Parallel.current_mode () in
        Fun.protect
          ~finally:(fun () ->
            Unix.putenv "PYTOND_PARALLEL" "";
            Sqldb.Parallel.set_mode saved)
          (fun () ->
            Unix.putenv "PYTOND_PARALLEL" "simulated";
            Sqldb.Parallel.force ();
            Alcotest.(check bool)
              "simulated" true
              (Sqldb.Parallel.current_mode () = Sqldb.Parallel.Simulated);
            Unix.putenv "PYTOND_PARALLEL" "sequential";
            Sqldb.Parallel.force ();
            Alcotest.(check bool)
              "sequential" true
              (Sqldb.Parallel.current_mode () = Sqldb.Parallel.Sequential_only);
            Unix.putenv "PYTOND_PARALLEL" "domains";
            Sqldb.Parallel.force ();
            Alcotest.(check bool)
              "domains" true
              (Sqldb.Parallel.current_mode () = Sqldb.Parallel.Domains)));
    tc "every mode computes the same result" (fun () ->
        let db = mini_db () in
        let sql = "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust" in
        let saved = Sqldb.Parallel.current_mode () in
        Fun.protect
          ~finally:(fun () -> Sqldb.Parallel.set_mode saved)
          (fun () ->
            let reference = Sqldb.Db.execute ~threads:1 db sql in
            List.iter
              (fun mode ->
                Sqldb.Parallel.set_mode mode;
                List.iter
                  (fun backend ->
                    check_rel "mode-invariant" reference
                      (Sqldb.Db.execute ~threads:3 ~backend db sql))
                  [ Sqldb.Db.Vectorized; Sqldb.Db.Compiled ])
              [ Sqldb.Parallel.Sequential_only; Sqldb.Parallel.Domains;
                Sqldb.Parallel.Simulated ])) ]

let suites =
  [ ("errors-frontend", frontend_tests);
    ("errors-translate", translate_tests);
    ("errors-auto", auto_tests);
    ("errors-guards", guard_tests);
    ("errors-edges", edge_tests);
    ("errors-parallel", parallel_tests) ]
