(** Dictionary encoding and selection-vector tests.

    Covers the storage-layer invariants (encode/decode round trips, shared
    dictionaries across gathers), SQL-level equivalence of dictionary vs
    raw-string execution (including the full TPC-H suite on both backends),
    null handling in dictionary sort/group-by, and randomized equivalence of
    the selection-vector filter against the eager filter. *)

open Sqldb
open Helpers

(* ------------------------------------------------------------------ *)
(* Column-level round trips                                           *)
(* ------------------------------------------------------------------ *)

let test_encode_roundtrip () =
  let raw = strings [| "b"; "a"; "b"; "c"; "a"; "b" |] in
  let enc = Column.encode raw in
  Alcotest.(check bool) "encoded to dict" true (Column.is_dict enc);
  let dec = Column.decode enc in
  for i = 0 to Column.length raw - 1 do
    Alcotest.(check string)
      (Printf.sprintf "row %d" i)
      (Column.string_at raw i) (Column.string_at dec i)
  done

let test_encode_nulls () =
  let raw =
    Column.of_values Value.TString
      [| Value.VString "x"; Value.VNull; Value.VString "y"; Value.VNull |]
  in
  let enc = Column.encode raw in
  Alcotest.(check bool) "encoded to dict" true (Column.is_dict enc);
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "null bit %d" i)
      (Value.is_null (Column.get raw i))
      (Value.is_null (Column.get enc i))
  done;
  let dec = Column.decode enc in
  Alcotest.(check bool) "null survives decode" true
    (Value.is_null (Column.get dec 1))

let test_take_shares_dict () =
  let enc = Column.encode (strings [| "a"; "b"; "a"; "c" |]) in
  let gathered = Column.take enc [| 3; 1; 1 |] in
  Alcotest.(check bool) "gather keeps dict" true (Column.is_dict gathered);
  Alcotest.(check string) "gathered value" "c" (Column.string_at gathered 0);
  (* -1 gather produces a null row *)
  let outer = Column.take enc [| 0; -1 |] in
  Alcotest.(check bool) "outer null" true (Value.is_null (Column.get outer 1))

let test_high_cardinality_stays_raw () =
  let raw =
    Column.of_strings (Array.init 3000 (fun i -> Printf.sprintf "v%d" i))
  in
  let enc = Column.encode ~max_distinct:1024 raw in
  Alcotest.(check bool) "stays raw" false (Column.is_dict enc)

(* ------------------------------------------------------------------ *)
(* SQL-level equivalence: dictionary vs raw strings                   *)
(* ------------------------------------------------------------------ *)

(* Build the same database twice, once per encoding toggle. *)
let with_encodings (build : unit -> 'a) : 'a * 'a =
  let saved = Db.dict_encoding_enabled () in
  Fun.protect
    ~finally:(fun () -> Db.set_dict_encoding saved)
    (fun () ->
      Db.set_dict_encoding true;
      let dict = build () in
      Db.set_dict_encoding false;
      let raw = build () in
      (dict, raw))

let string_db () =
  let db = Db.create () in
  Db.load_table db "items"
    (rel
       [ "id"; "grp"; "tag"; "price" ]
       [ ints [| 1; 2; 3; 4; 5; 6; 7; 8 |];
         strings [| "red"; "blue"; "red"; "green"; "blue"; "red"; "green";
                    "blue" |];
         Column.of_values Value.TString
           [| Value.VString "hot"; Value.VNull; Value.VString "cold";
              Value.VString "hot"; Value.VNull; Value.VString "mild";
              Value.VString "cold"; Value.VString "hot" |];
         floats [| 1.5; 2.0; 3.25; 4.0; 0.5; 2.75; 3.0; 1.0 |] ]);
  Db.load_table db "colors"
    (rel
       [ "name"; "rank" ]
       [ strings [| "red"; "green"; "blue"; "black" |];
         ints [| 1; 2; 3; 4 |] ])
  |> ignore;
  db

let equivalence_queries =
  [ "SELECT grp, COUNT(*) AS n, SUM(price) AS s FROM items GROUP BY grp";
    "SELECT * FROM items WHERE grp = 'red'";
    "SELECT * FROM items WHERE grp <> 'red'";
    "SELECT * FROM items WHERE grp = 'no-such-color'";
    "SELECT * FROM items WHERE grp <> 'no-such-color'";
    "SELECT * FROM items WHERE tag = 'hot'";
    "SELECT * FROM items WHERE tag <> 'hot'";
    "SELECT * FROM items WHERE grp IN ('red', 'green')";
    "SELECT * FROM items WHERE grp LIKE 'b%'";
    "SELECT * FROM items WHERE grp LIKE 'gre%'";
    "SELECT * FROM items WHERE grp NOT LIKE 'b%'";
    "SELECT * FROM items WHERE tag LIKE 'h%'";
    "SELECT * FROM items WHERE tag NOT LIKE 'c%'";
    "SELECT i.id, c.rank FROM items AS i, colors AS c WHERE i.grp = c.name";
    "SELECT DISTINCT grp, tag FROM items";
    "SELECT tag, COUNT(*) AS n FROM items GROUP BY tag";
    "SELECT * FROM items ORDER BY grp, id";
    "SELECT * FROM items ORDER BY tag DESC, id";
    "SELECT grp, MIN(tag) AS lo, MAX(tag) AS hi FROM items GROUP BY grp" ]

let test_sql_equivalence () =
  List.iter
    (fun sql ->
      List.iter
        (fun backend ->
          let dict, raw =
            with_encodings (fun () ->
                Db.execute ~backend (string_db ()) sql)
          in
          check_rel
            (Printf.sprintf "%s | %s" (Db.backend_name backend) sql)
            raw dict)
        [ Db.Vectorized; Db.Compiled ])
    equivalence_queries

(* Encode -> filter -> join -> decode equals raw-string execution, with the
   dictionary case verified to actually run on dictionary columns. *)
let test_roundtrip_pipeline () =
  let sql =
    "SELECT i.grp, c.rank, COUNT(*) AS n FROM items AS i, colors AS c \
     WHERE i.grp = c.name AND i.grp IN ('red', 'blue') \
     GROUP BY i.grp, c.rank ORDER BY i.grp"
  in
  let dict, raw = with_encodings (fun () -> Db.execute (string_db ()) sql) in
  check_rel "pipeline round-trip" raw (Relation.decode_strings dict);
  (* the dictionary db really stores dict columns *)
  Db.set_dict_encoding true;
  let db = string_db () in
  let items = (Catalog.find (Db.catalog db) "items").Catalog.rel in
  Alcotest.(check bool) "grp is dict" true
    (Column.is_dict (Relation.column items "grp"));
  Alcotest.(check bool) "tag is dict (nullable)" true
    (Column.is_dict (Relation.column items "tag"))

(* Full TPC-H suite: dictionary and raw-string execution must produce
   identical results on every query and backend (acceptance criterion). *)
let test_tpch_equivalence () =
  let dbs = with_encodings (fun () -> Tpch.Dbgen.make_db 0.01) in
  let db_dict, db_raw = dbs in
  List.iter
    (fun (name, source) ->
      List.iter
        (fun backend ->
          let pbackend =
            match backend with
            | Db.Compiled -> Pytond.Compiled
            | _ -> Pytond.Vectorized
          in
          let run db =
            Pytond.run ~backend:pbackend ~db ~source ~fname:"query" ()
          in
          check_rel
            (Printf.sprintf "%s %s" name (Db.backend_name backend))
            (run db_raw) (run db_dict))
        [ Db.Vectorized; Db.Compiled ])
    Tpch.Queries.all

(* ------------------------------------------------------------------ *)
(* Code-direct predicates (equality and prefix LIKE on codes)         *)
(* ------------------------------------------------------------------ *)

(* [Eval.dict_eq_pred] / [Eval.dict_prefix_pred] operate on raw codes
   without touching the strings; check their edge cases directly against
   naive string evaluation: absent literals, prefixes longer than some
   values with an equal head ("PRO" vs prefix "PROMO"), negation over
   nulls. *)
let test_code_direct_preds () =
  let vals =
    [| Value.VString "PRO"; Value.VNull; Value.VString "PROMO";
       Value.VString "PROMOX"; Value.VString "PRZ"; Value.VString "A";
       Value.VString "PROMO"; Value.VNull |]
  in
  let c = Column.encode (Column.of_values Value.TString vals) in
  Alcotest.(check bool) "column is dict" true (Column.is_dict c);
  let n = Array.length vals in
  let naive f i = match vals.(i) with Value.VString s -> f s | _ -> false in
  let check_pred name (got : (int -> bool) option) (expect : int -> bool) =
    match got with
    | None -> Alcotest.fail (name ^ ": expected a fast path")
    | Some p ->
      for i = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s row %d" name i)
          (expect i) (p i)
      done
  in
  List.iter
    (fun (k, negated) ->
      check_pred
        (Printf.sprintf "eq %s negated=%b" k negated)
        (Eval.dict_eq_pred c k ~negated)
        (naive (fun s -> String.equal s k <> negated)))
    [ ("PROMO", false); ("PROMO", true); ("absent", false); ("absent", true) ];
  List.iter
    (fun (p, negated) ->
      check_pred
        (Printf.sprintf "prefix %s negated=%b" p negated)
        (Eval.dict_prefix_pred c p ~negated)
        (naive (fun s ->
             (String.length s >= String.length p
             && String.equal (String.sub s 0 (String.length p)) p)
             <> negated)))
    [ ("PROMO", false); ("PROMO", true); ("PRO", false); ("P", false);
      ("Z", false); ("", false) ];
  (* non-dictionary columns must decline so the decode path runs *)
  let raw = Column.of_values Value.TString vals in
  Alcotest.(check bool) "raw eq declines" true
    (Eval.dict_eq_pred raw "PROMO" ~negated:false = None);
  Alcotest.(check bool) "raw prefix declines" true
    (Eval.dict_prefix_pred raw "PRO" ~negated:false = None);
  (* LIKE patterns with inner metacharacters fall back to the table path,
     which must agree with the pattern matcher *)
  check_pred "non-prefix like"
    (Eval.dict_like_pred c "P%O" ~negated:false)
    (naive (fun s -> Eval.compile_like "P%O" s))

(* ------------------------------------------------------------------ *)
(* Null handling in dictionary sort / group-by                        *)
(* ------------------------------------------------------------------ *)

let test_null_sort_group () =
  let build () =
    let db = Db.create () in
    Db.load_table db "t"
      (rel [ "k"; "v" ]
         [ Column.of_values Value.TString
             [| Value.VString "b"; Value.VNull; Value.VString "a";
                Value.VNull; Value.VString "b"; Value.VString "a" |];
           ints [| 1; 2; 3; 4; 5; 6 |] ]);
    db
  in
  List.iter
    (fun sql ->
      List.iter
        (fun backend ->
          let dict, raw =
            with_encodings (fun () -> Db.execute ~backend (build ()) sql)
          in
          check_rel
            (Printf.sprintf "%s | %s" (Db.backend_name backend) sql)
            raw dict)
        [ Db.Vectorized; Db.Compiled ])
    [ "SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY k";
      "SELECT * FROM t ORDER BY k, v";
      "SELECT * FROM t ORDER BY k DESC, v";
      "SELECT DISTINCT k FROM t" ]

(* ------------------------------------------------------------------ *)
(* Selection-vector filter equivalence (randomized)                   *)
(* ------------------------------------------------------------------ *)

let random_relation rand n =
  let tags = [| "x"; "y"; "z"; "w" |] in
  let scol =
    Column.of_values Value.TString
      (Array.init n (fun _ ->
           if Random.State.int rand 10 = 0 then Value.VNull
           else Value.VString tags.(Random.State.int rand 4)))
  in
  let icol = Column.of_ints (Array.init n (fun _ -> Random.State.int rand 20)) in
  rel [ "s"; "i" ] [ Column.encode scol; icol ]

let random_pred rand =
  let open Plan in
  let atom () =
    match Random.State.int rand 4 with
    | 0 ->
      PBin (Sql_ast.Eq, PCol 0, PLit (Value.VString [| "x"; "y"; "z"; "q" |].(Random.State.int rand 4)))
    | 1 -> PInList (PCol 0, [ Value.VString "x"; Value.VString "w" ], Random.State.bool rand)
    | 2 -> PBin (Sql_ast.Lt, PCol 1, PLit (Value.VInt (Random.State.int rand 20)))
    | _ -> PLike (PCol 0, (if Random.State.bool rand then "x%" else "%y%"), false)
  in
  match Random.State.int rand 3 with
  | 0 -> atom ()
  | 1 -> PBin (Sql_ast.And, atom (), atom ())
  | _ -> PBin (Sql_ast.Or, atom (), atom ())

let test_filter_sel_equivalence () =
  let rand = Random.State.make [| 0x5e1ec7 |] in
  for trial = 1 to 50 do
    let n = 1 + Random.State.int rand 200 in
    let r = random_relation rand n in
    let cols = r.Relation.cols in
    let pred = random_pred rand in
    let eager = Eval.eval_filter cols ~n pred in
    let via_all =
      Eval.eval_filter_sel cols ~sel:(Array.init n Fun.id) pred
    in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d full sel" trial)
      (Array.to_list eager) (Array.to_list via_all);
    (* a strict subset selection must yield exactly the subset's survivors *)
    let sub =
      Array.of_list
        (List.filter (fun _ -> Random.State.bool rand)
           (List.init n Fun.id))
    in
    let expected =
      Array.to_list eager
      |> List.filter (fun i -> Array.exists (Int.equal i) sub)
    in
    let got = Eval.eval_filter_sel cols ~sel:sub pred in
    Alcotest.(check (list int))
      (Printf.sprintf "trial %d subset sel" trial)
      expected (Array.to_list got)
  done

let suites =
  [ ( "dict-storage",
      [ tc "encode round-trip" test_encode_roundtrip;
        tc "encode with nulls" test_encode_nulls;
        tc "take shares dictionary" test_take_shares_dict;
        tc "high cardinality stays raw" test_high_cardinality_stays_raw ] );
    ( "dict-equivalence",
      [ tc "sql equivalence dict vs raw" test_sql_equivalence;
        tc "encode-filter-join-decode round trip" test_roundtrip_pipeline;
        tc "tpch suite dict vs raw" test_tpch_equivalence;
        tc "code-direct eq/prefix predicates" test_code_direct_preds;
        tc "nulls in dict sort/group-by" test_null_sort_group ] );
    ( "selection-vectors",
      [ tc "filter_sel matches eval_filter" test_filter_sel_equivalence ] ) ]
