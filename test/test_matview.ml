(** Materialized views: the Matview delta engine.

    The core check is a differential oracle — after every append, a view's
    incrementally maintained result must equal a from-scratch rebuild on
    the final snapshot. Exactness is adaptive: when appends only touch the
    view's driver (leftmost probe-spine) table, the incremental fold is a
    literal prefix-continuation of the full fold and results must be
    {e bit-identical} (hex-float compare); when a build-side table grows,
    the delta rule replays the same multiset in a different interleaving
    and results are compared at canonical rounding instead. *)

open Sqldb

(* Bit-exact canonicalization: floats printed as hex ("%h") so two results
   compare equal only when every float cell is the same IEEE value. *)
let exact_rows (r : Relation.t) : string list =
  List.init (Relation.n_rows r) (fun i ->
      String.concat "|"
        (Array.to_list
           (Array.map
              (fun c ->
                match Column.get c i with
                | Value.VFloat f -> Printf.sprintf "%h" f
                | v -> Value.to_string v)
              r.Relation.cols)))

(* Reference rebuild: register the same SQL as a fresh view over a frozen
   snapshot of [db], forcing Matview's full build path on the final data.
   This is the fold the incremental state claims to equal bit for bit. *)
let rebuild_view db sql : Relation.t =
  let snap = Db.snapshot db in
  match Db.register_view snap ~name:"__ref" sql with
  | Ok () -> Db.refresh snap "__ref"
  | Error e -> Alcotest.failf "reference view registration failed: %s" e

let ok_or_fail = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "register_view failed: %s" e

let find_info db name =
  match List.find_opt (fun i -> i.Db.vi_name = name) (Db.view_infos db) with
  | Some i -> i
  | None -> Alcotest.failf "view %s not registered" name

(* ------------------------------------------------------------------ *)
(* O(delta) appends (stats/zone recompute scoped to the delta)         *)
(* ------------------------------------------------------------------ *)

let test_append_scan_bound () =
  let db = Tpch.Dbgen.make_db 0.01 in
  let li = Catalog.relation (Db.catalog db) "lineitem" in
  let n = Relation.n_rows li in
  Alcotest.(check bool) "table is non-trivial" true (n > 10_000);
  let batch = Relation.take li (Array.init 64 Fun.id) in
  Stats.reset_rows_scanned ();
  Db.append_table db "lineitem" batch;
  let delta_scan = Stats.rows_scanned () in
  Stats.reset_rows_scanned ();
  ignore (Stats.compute (Catalog.relation (Db.catalog db) "lineitem"));
  let full_scan = Stats.rows_scanned () in
  Alcotest.(check bool) "append recomputed something" true (delta_scan > 0);
  (* the regression that matters: appending 64 rows must not rescan the
     table — stats and zone maps fold forward over the suffix only *)
  Alcotest.(check bool)
    (Printf.sprintf "append scan is O(delta): %d << %d" delta_scan full_scan)
    true
    (delta_scan * 5 < full_scan);
  let r =
    Db.execute db "SELECT count(*) AS c FROM lineitem" |> Relation.canonical
  in
  Alcotest.(check (list string)) "row count" [ string_of_int (n + 64) ] r

let test_append_stats_consistency () =
  (* appended-path stats must agree with recomputed stats on the facts the
     planner consumes (ranges, null counts), and zone maps must still
     prune correctly *)
  let db = Db.create () in
  Db.load_table db "t"
    (Helpers.rel [ "k"; "v"; "s" ]
       [ Helpers.ints [| 1; 2; 3; 4 |];
         Helpers.floats [| 1.5; -2.0; 3.25; 0.0 |];
         Helpers.strings [| "b"; "d"; "a"; "c" |] ]);
  Db.append_table db "t"
    (Helpers.rel [ "k"; "v"; "s" ]
       [ Helpers.ints [| 9; 0 |];
         Helpers.floats [| 10.5; -7.0 |];
         Helpers.strings [| "z"; "aa" |] ]);
  let st =
    match Catalog.stats_opt (Db.catalog db) "t" with
    | Some s -> s
    | None -> Alcotest.fail "no stats"
  in
  let full = Stats.compute (Catalog.relation (Db.catalog db) "t") in
  Array.iteri
    (fun i inc ->
      let f = full.Stats.cols.(i) in
      Alcotest.(check (option (pair (float 1e-9) (float 1e-9))))
        (Printf.sprintf "range col %d" i)
        f.Stats.range inc.Stats.range;
      Alcotest.(check int)
        (Printf.sprintf "nulls col %d" i)
        f.Stats.null_count inc.Stats.null_count)
    st.Stats.cols;
  Alcotest.(check int) "row count" 6 st.Stats.row_count;
  let r =
    Db.execute db "SELECT k FROM t WHERE v > 4.0 ORDER BY k"
    |> Relation.canonical ~digits:0
  in
  Alcotest.(check (list string)) "scan after append" [ "9" ] r

(* ------------------------------------------------------------------ *)
(* Differential IVM oracle over TPC-H                                  *)
(* ------------------------------------------------------------------ *)

let tpch_sql db q =
  Pytond.compile ~db ~source:(Tpch.Queries.find q) ~fname:"query" ()

(* Register [q] as a view, interleave lineitem appends with reads; after
   every append the served result must equal a from-scratch rebuild on
   that snapshot — bit-identical when lineitem is the view's driver. *)
let oracle ?(rounds = 3) ~q db =
  let sql = tpch_sql db q in
  ok_or_fail (Db.register_view db ~name:q sql);
  let info = find_info db q in
  Alcotest.(check bool) (q ^ " maintainable") true info.Db.vi_maintainable;
  let driver =
    match Planner.analyze_ivm (Db.plan db sql) with
    | Ok s -> s.Planner.ivm_driver
    | Error r -> Alcotest.failf "%s: %s" q (Planner.ivm_reason_to_string r)
  in
  let suffix_exact = driver = Some "lineitem" in
  let before = (Db.cache_stats db).Db.delta_refreshes in
  for k = 1 to rounds do
    let li = Catalog.relation (Db.catalog db) "lineitem" in
    let batch =
      Relation.take li
        (Array.init 48 (fun i -> (i + (k * 7)) mod Relation.n_rows li))
    in
    Db.append_table db "lineitem" batch;
    let served = Db.execute db sql in
    let rebuilt = rebuild_view db sql in
    if suffix_exact then
      Alcotest.(check (list string))
        (Printf.sprintf "%s round %d bit-exact" q k)
        (exact_rows rebuilt) (exact_rows served)
    else
      Helpers.check_rel ~digits:6
        (Printf.sprintf "%s round %d canonical" q k)
        rebuilt served;
    (* and against the ordinary executor on the same snapshot *)
    Helpers.check_rows_close ~digits:3
      (Printf.sprintf "%s round %d vs executor" q k)
      (Relation.canonical ~digits:3 (Db.execute (Db.snapshot db) sql))
      (Relation.canonical ~digits:3 served)
  done;
  (* counter expectations only apply on the delta path; with PYTOND_IVM=0
     every stale read above took the recompute fallback and the
     differential checks are the whole point of the run *)
  if Matview.enabled () then begin
    Alcotest.(check int)
      (q ^ " appends maintained incrementally")
      rounds
      ((Db.cache_stats db).Db.delta_refreshes - before);
    (* a second read with no intervening write is a pure view hit *)
    let vh = (Db.cache_stats db).Db.view_hits in
    ignore (Db.execute db sql);
    Alcotest.(check int) (q ^ " fresh read hits") (vh + 1)
      (Db.cache_stats db).Db.view_hits
  end

let test_oracle_q1 () = oracle ~q:"q1" (Tpch.Dbgen.make_db 0.005)
let test_oracle_q6 () = oracle ~q:"q6" (Tpch.Dbgen.make_db 0.005)
let test_oracle_q3 () = oracle ~q:"q3" (Tpch.Dbgen.make_db 0.005)

let test_oracle_q12 () =
  (* q12's driver is orders: lineitem appends extend the build side, so
     this exercises the delta-rule (hybrid old/new catalog) path *)
  let db = Tpch.Dbgen.make_db 0.005 in
  let sql = tpch_sql db "q12" in
  (match Planner.analyze_ivm (Db.plan db sql) with
  | Ok s ->
    Alcotest.(check (option string))
      "q12 drives from orders" (Some "orders") s.Planner.ivm_driver
  | Error r -> Alcotest.failf "q12: %s" (Planner.ivm_reason_to_string r));
  oracle ~q:"q12" db

let test_oracle_q12_driver_appends () =
  (* appending to orders (the driver) must stay bit-exact even for the
     join-shaped q12 *)
  let db = Tpch.Dbgen.make_db 0.005 in
  let sql = tpch_sql db "q12" in
  ok_or_fail (Db.register_view db ~name:"q12o" sql);
  for k = 1 to 2 do
    let ord = Catalog.relation (Db.catalog db) "orders" in
    Db.append_table db "orders"
      (Relation.take ord
         (Array.init 32 (fun i -> (i + k) mod Relation.n_rows ord)));
    let served = Db.execute db sql in
    let rebuilt = rebuild_view db sql in
    Alcotest.(check (list string))
      (Printf.sprintf "q12 driver round %d bit-exact" k)
      (exact_rows rebuilt) (exact_rows served)
  done

(* ------------------------------------------------------------------ *)
(* Grouped-filter view on a synthetic table: groups appear, nulls skip  *)
(* ------------------------------------------------------------------ *)

let grp_sql =
  "SELECT grp, count(*) AS n, sum(x) AS s, avg(x) AS a FROM a WHERE x > 0 \
   GROUP BY grp ORDER BY grp"

let grp_db () =
  let db = Db.create () in
  Db.load_table db "a"
    (Helpers.rel [ "x"; "grp" ]
       [ Helpers.floats [| 1.5; 2.5; -1.0; 4.0 |];
         Helpers.ints [| 1; 2; 1; 2 |] ]);
  db

let test_grouped_filter_view () =
  let db = grp_db () in
  ok_or_fail (Db.register_view db ~name:"g" grp_sql);
  Alcotest.(check (list string))
    "initial" [ "1|1|1.5000|1.5000"; "2|2|6.5000|3.2500" ]
    (Relation.canonical ~digits:4 (Db.execute db grp_sql));
  (* new group 3 appears, group 1 grows, negatives are filtered out *)
  Db.append_table db "a"
    (Helpers.rel [ "x"; "grp" ]
       [ Helpers.floats [| 10.0; -5.0; 7.0 |];
         Helpers.ints [| 1; 2; 3 |] ]);
  Alcotest.(check (list string))
    "after append" [ "1|2|11.5000|5.7500"; "2|2|6.5000|3.2500"; "3|1|7.0000|7.0000" ]
    (Relation.canonical ~digits:4 (Db.execute db grp_sql));
  (* the view result is served identically on every backend and thread
     count: the stored state IS the answer *)
  List.iter
    (fun backend ->
      List.iter
        (fun threads ->
          Alcotest.(check (list string))
            (Printf.sprintf "served on %s @%dt" (Db.backend_name backend)
               threads)
            [ "1|2|11.5000|5.7500"; "2|2|6.5000|3.2500"; "3|1|7.0000|7.0000" ]
            (Relation.canonical ~digits:4
               (Db.execute ~backend ~threads db grp_sql)))
        [ 1; 3 ])
    [ Db.Vectorized; Db.Compiled ];
  if Matview.enabled () then
    Alcotest.(check int) "exactly one delta refresh" 1
      (Db.cache_stats db).Db.delta_refreshes

(* ------------------------------------------------------------------ *)
(* Fallback: non-maintainable plans recompute, with a typed reason      *)
(* ------------------------------------------------------------------ *)

let test_fallback_join_without_agg () =
  let db = Helpers.mini_db () in
  let sql =
    "SELECT o_id, c_name FROM orders, cust WHERE o_cust = c_id ORDER BY o_id"
  in
  ok_or_fail (Db.register_view db ~name:"j" sql);
  let info = find_info db "j" in
  Alcotest.(check bool) "not maintainable" false info.Db.vi_maintainable;
  Alcotest.(check (option string))
    "typed reason"
    (Some "join without an aggregate (view state would grow with the input)")
    info.Db.vi_reason;
  (* the explain surface reports the same decision *)
  Alcotest.(check bool) "explain says fallback" true
    (Helpers.contains_sub "matview: fallback (join without an aggregate"
       (Db.explain db sql));
  let before = Relation.canonical ~digits:0 (Db.execute db sql) in
  Alcotest.(check int) "4 rows" 4 (List.length before);
  Db.append_table db "orders"
    (Helpers.rel [ "o_id"; "o_cust"; "o_total"; "o_date" ]
       [ Helpers.ints [| 6 |]; Helpers.ints [| 20 |];
         Helpers.floats [| 10. |]; Helpers.dates [| "1997-01-01" |] ]);
  let after = Relation.canonical ~digits:0 (Db.execute db sql) in
  Alcotest.(check int) "5 rows after append" 5 (List.length after);
  let st = Db.cache_stats db in
  Alcotest.(check int) "served by recompute, not delta" 0 st.Db.delta_refreshes;
  Alcotest.(check bool) "recompute counted" true (st.Db.view_recomputes >= 1)

let test_explain_maintainable () =
  let db = Tpch.Dbgen.make_db 0.002 in
  let sql = tpch_sql db "q1" in
  Alcotest.(check bool) "q1 explain is maintainable" true
    (Helpers.contains_sub "matview: maintainable" (Db.explain db sql));
  Alcotest.(check bool) "q1 driver reported" true
    (Helpers.contains_sub "driver=lineitem" (Db.explain db sql))

(* ------------------------------------------------------------------ *)
(* Crash consistency: a failed refresh leaves the previous version      *)
(* ------------------------------------------------------------------ *)

let test_crashed_refresh_keeps_version () =
  let db = grp_db () in
  ok_or_fail (Db.register_view db ~name:"g" grp_sql);
  let v0 = (find_info db "g").Db.vi_version in
  let before =
    match Db.view_peek db "g" with
    | Some r -> Relation.canonical ~digits:4 r
    | None -> Alcotest.fail "no initial state"
  in
  Db.append_table db "a"
    (Helpers.rel [ "x"; "grp" ]
       [ Helpers.floats [| 100.0 |]; Helpers.ints [| 1 |] ]);
  (* a 1-row budget cannot cover the delta replay: the refresh must trip
     and unwind without installing partial state *)
  (match Db.refresh ~row_budget:1 db "g" with
  | exception Guard.Trip _ -> ()
  | _ -> Alcotest.fail "expected Guard.Trip");
  Alcotest.(check int) "version unchanged after crash" v0
    (find_info db "g").Db.vi_version;
  (match Db.view_peek db "g" with
  | Some r ->
    Alcotest.(check (list string))
      "stored state is the previous consistent version" before
      (Relation.canonical ~digits:4 r)
  | None -> Alcotest.fail "state lost");
  (* an unbudgeted refresh then completes the delta *)
  Alcotest.(check (list string))
    "recovered refresh"
    [ "1|2|101.5000|50.7500"; "2|2|6.5000|3.2500" ]
    (Relation.canonical ~digits:4 (Db.refresh db "g"));
  Alcotest.(check bool) "version advanced" true
    ((find_info db "g").Db.vi_version > v0)

let test_faulty_refresh_differential () =
  (* under armed fault injection every read must still equal a rebuild:
     injected faults either recover (suppressed retry) or unwind whole *)
  let db = grp_db () in
  Faults.arm ~seed:20260808 ();
  Fun.protect
    ~finally:(fun () -> Faults.arm_from_env ())
    (fun () ->
      ok_or_fail (Db.register_view db ~name:"g" grp_sql);
      for k = 1 to 6 do
        Db.append_table db "a"
          (Helpers.rel [ "x"; "grp" ]
             [ Helpers.floats [| float_of_int k; -.float_of_int k |];
               Helpers.ints [| (k mod 3) + 1; 2 |] ]);
        Helpers.check_rel ~digits:6
          (Printf.sprintf "faulty round %d" k)
          (rebuild_view db grp_sql)
          (Db.execute db grp_sql)
      done)

(* ------------------------------------------------------------------ *)
(* PYTOND_IVM=0: fallback recompute path stays live                     *)
(* ------------------------------------------------------------------ *)

let test_ivm_disabled () =
  let saved = Matview.enabled () in
  Matview.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Matview.set_enabled saved)
    (fun () ->
      let db = grp_db () in
      ok_or_fail (Db.register_view db ~name:"g" grp_sql);
      Db.append_table db "a"
        (Helpers.rel [ "x"; "grp" ]
           [ Helpers.floats [| 7.0 |]; Helpers.ints [| 3 |] ]);
      Helpers.check_rel ~digits:6 "disabled IVM still correct"
        (rebuild_view db grp_sql)
        (Db.execute db grp_sql);
      let st = Db.cache_stats db in
      Alcotest.(check int) "no delta refreshes" 0 st.Db.delta_refreshes;
      Alcotest.(check bool) "recompute path used" true
        (st.Db.view_recomputes >= 1))

(* ------------------------------------------------------------------ *)
(* Tenancy: per-owner counters and view quotas                          *)
(* ------------------------------------------------------------------ *)

let test_owner_counters_and_quota () =
  let db = grp_db () in
  ok_or_fail (Db.register_view db ~owner:"t1" ~quota:1 ~name:"g" grp_sql);
  (* quota of one: a second view for the same tenant is refused *)
  (match
     Db.register_view db ~owner:"t1" ~quota:1 ~name:"g2"
       "SELECT count(*) AS n FROM a"
   with
  | Error e ->
    Alcotest.(check bool) "quota error names the tenant" true
      (Helpers.contains_sub "quota" e)
  | Ok () -> Alcotest.fail "quota not enforced");
  (* duplicate names are refused regardless of owner *)
  (match Db.register_view db ~owner:"t2" ~name:"g" grp_sql with
  | Error e ->
    Alcotest.(check bool) "duplicate name refused" true
      (Helpers.contains_sub "already registered" e)
  | Ok () -> Alcotest.fail "duplicate view name accepted");
  (* reads attribute to the reading tenant, not the view's owner *)
  ignore (Db.execute ~owner:"t2" db grp_sql);
  Db.append_table db "a"
    (Helpers.rel [ "x"; "grp" ]
       [ Helpers.floats [| 1.0 |]; Helpers.ints [| 1 |] ]);
  ignore (Db.execute ~owner:"t2" db grp_sql);
  if Matview.enabled () then begin
    let _, _, _, vh, dr, _ = Db.owner_stats db "t2" in
    Alcotest.(check (pair int int)) "t2: one hit, one delta" (1, 1) (vh, dr);
    let _, _, _, vh1, dr1, _ = Db.owner_stats db "t1" in
    Alcotest.(check (pair int int)) "t1 never read" (0, 0) (vh1, dr1)
  end

let test_replace_triggers_replan () =
  let db = grp_db () in
  ok_or_fail (Db.register_view db ~name:"g" grp_sql);
  ignore (Db.execute db grp_sql);
  (* replacing the base table (same schema, new contents) must force the
     view through the replan-and-rebuild path, never a delta *)
  Db.load_table db "a"
    (Helpers.rel [ "x"; "grp" ]
       [ Helpers.floats [| 2.0; 3.0 |]; Helpers.ints [| 7; 7 |] ]);
  Alcotest.(check (list string))
    "view reflects the replacement" [ "7|2|5.0000|2.5000" ]
    (Relation.canonical ~digits:4 (Db.execute db grp_sql));
  let st = Db.cache_stats db in
  Alcotest.(check int) "no delta across replace" 0 st.Db.delta_refreshes;
  Alcotest.(check bool) "recompute counted" true (st.Db.view_recomputes >= 1)

let suites =
  let tc = Helpers.tc in
  [ ( "matview-append",
      [ tc "append scans O(delta), not O(table)" test_append_scan_bound;
        tc "appended stats match recompute" test_append_stats_consistency ] );
    ( "matview-oracle",
      [ tc "q1 suffix refresh bit-exact" test_oracle_q1;
        tc "q6 suffix refresh bit-exact" test_oracle_q6;
        tc "q3 join view bit-exact on driver appends" test_oracle_q3;
        tc "q12 delta-rule on build-side appends" test_oracle_q12;
        tc "q12 driver appends bit-exact" test_oracle_q12_driver_appends ] );
    ( "matview-groups",
      [ tc "grouped filter: new groups, nulls, backends"
          test_grouped_filter_view ] );
    ( "matview-fallback",
      [ tc "join without aggregate recomputes with typed reason"
          test_fallback_join_without_agg;
        tc "explain reports maintainability" test_explain_maintainable;
        tc "PYTOND_IVM=0 forces recompute" test_ivm_disabled ] );
    ( "matview-crash",
      [ tc "tripped refresh keeps previous version"
          test_crashed_refresh_keeps_version;
        tc "differential under fault injection"
          test_faulty_refresh_differential ] );
    ( "matview-tenancy",
      [ tc "owner counters and view quota" test_owner_counters_and_quota;
        tc "replace triggers replan" test_replace_triggers_replan ] ) ]
