(** Unit & property tests for the storage primitives: values, dates,
    bitsets, columns, relations. *)

open Sqldb
open Helpers

let date_tests =
  [ tc "iso roundtrip" (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string)
              s s
              (Value.iso_of_date (Value.date_of_iso s)))
          [ "1970-01-01"; "1992-01-01"; "1998-08-02"; "2000-02-29";
            "1900-03-01"; "2024-12-31" ]);
    tc "epoch zero" (fun () ->
        Alcotest.(check int) "1970-01-01 is day 0" 0
          (Value.date_of_iso "1970-01-01"));
    tc "ordering" (fun () ->
        Alcotest.(check bool)
          "dates ordered" true
          (Value.date_of_iso "1995-03-15" < Value.date_of_iso "1995-03-16"));
    tc "year/month extraction" (fun () ->
        let d = Value.date_of_iso "1996-07-04" in
        Alcotest.(check int) "year" 1996 (Value.year_of_days d);
        Alcotest.(check int) "month" 7 (Value.month_of_days d));
    tc "leap year" (fun () ->
        let d = Value.date_of_iso "2000-02-29" in
        let y, m, day = Value.ymd_of_days d in
        Alcotest.(check (triple int int int)) "ymd" (2000, 2, 29) (y, m, day))
  ]

let date_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"days->ymd->days roundtrip" ~count:500
         QCheck2.Gen.(int_range (-100_000) 100_000)
         (fun d ->
           let y, m, day = Value.ymd_of_days d in
           Value.days_of_ymd y m day = d)) ]

let bitset_tests =
  [ tc "set/get/clear" (fun () ->
        let b = Bitset.create 100 in
        Bitset.set b 0;
        Bitset.set b 63;
        Bitset.set b 99;
        Alcotest.(check bool) "0 set" true (Bitset.get b 0);
        Alcotest.(check bool) "63 set" true (Bitset.get b 63);
        Alcotest.(check bool) "1 unset" false (Bitset.get b 1);
        Bitset.clear b 63;
        Alcotest.(check bool) "63 cleared" false (Bitset.get b 63);
        Alcotest.(check int) "popcount" 2 (Bitset.popcount b));
    tc "union" (fun () ->
        let a = Bitset.create 16 and b = Bitset.create 16 in
        Bitset.set a 1;
        Bitset.set b 2;
        let u = Bitset.union a b in
        Alcotest.(check (list int)) "union bits" [ 1; 2 ]
          (Array.to_list (Bitset.to_indices u))) ]

let bitset_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"of_indices/to_indices roundtrip" ~count:200
         QCheck2.Gen.(list_size (int_bound 50) (int_bound 199))
         (fun idx ->
           let idx = List.sort_uniq compare idx in
           let b = Bitset.of_indices ~len:200 (Array.of_list idx) in
           Array.to_list (Bitset.to_indices b) = idx)) ]

let column_tests =
  [ tc "take with -1 yields nulls" (fun () ->
        let c = ints [| 10; 20; 30 |] in
        let t = Column.take c [| 2; -1; 0 |] in
        Alcotest.(check bool) "null at 1" true (Column.is_null t 1);
        Alcotest.(check int) "t[0]" 30 (Column.int_at t 0);
        Alcotest.(check int) "t[2]" 10 (Column.int_at t 2));
    tc "of_values infers nulls" (fun () ->
        let c =
          Column.of_values Value.TFloat
            [| Value.VFloat 1.; Value.VNull; Value.VFloat 3. |]
        in
        Alcotest.(check bool) "has nulls" true (Column.has_nulls c);
        Alcotest.(check bool) "mid null" true (Column.is_null c 1));
    tc "concat fast path" (fun () ->
        let c = Column.concat [ ints [| 1; 2 |]; ints [| 3 |] ] in
        Alcotest.(check int) "len" 3 (Column.length c);
        Alcotest.(check int) "last" 3 (Column.int_at c 2));
    tc "concat with nulls" (fun () ->
        let a = Column.take (ints [| 1 |]) [| -1 |] in
        let c = Column.concat [ a; ints [| 5 |] ] in
        Alcotest.(check bool) "null kept" true (Column.is_null c 0);
        Alcotest.(check int) "value kept" 5 (Column.int_at c 1)) ]

let column_props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"take permutes values" ~count:200
         QCheck2.Gen.(list_size (int_range 1 40) (int_range (-1000) 1000))
         (fun xs ->
           let arr = Array.of_list xs in
           let c = ints arr in
           let n = Array.length arr in
           let idx = Array.init n (fun i -> n - 1 - i) in
           let t = Column.take c idx in
           Array.for_all
             (fun i -> Column.int_at t i = arr.(n - 1 - i))
             (Array.init n Fun.id))) ]

(* Bigarray-backed columns must be indistinguishable from the legacy
   boxed-array layout: same values, same nulls, through ingest, gather
   (take) and concat, for every promotable type. *)
let bigarray_tests =
  let values_of c = Array.init (Column.length c) (Column.get c) in
  let mixed_floats n =
    Array.init n (fun i ->
        if i mod 7 = 0 then Value.VNull
        else Value.VFloat (float_of_int (i - (n / 2)) /. 3.))
  in
  [ tc "round trip vs legacy" (fun () ->
        let n = 300 in
        List.iter
          (fun (name, ty, vals) ->
            let legacy = Column.of_values ty vals in
            let big = Column.to_bigarray legacy in
            Alcotest.(check bool) (name ^ " promoted") true
              (Column.is_bigarray big);
            Alcotest.(check bool)
              (name ^ " values survive") true
              (values_of big = vals && values_of legacy = vals);
            (* gather through a reversing permutation with injected nulls *)
            let idx =
              Array.init n (fun i -> if i mod 11 = 3 then -1 else n - 1 - i)
            in
            let gb = Column.take big idx and gl = Column.take legacy idx in
            Alcotest.(check bool)
              (name ^ " take keeps the unboxed backing") true
              (Column.is_bigarray gb);
            Alcotest.(check bool)
              (name ^ " take agrees") true
              (values_of gb = values_of gl);
            (* scatter the gathered halves back together via concat *)
            let cb = Column.concat [ gb; big ]
            and cl = Column.concat [ gl; legacy ] in
            Alcotest.(check bool)
              (name ^ " concat agrees") true
              (values_of cb = values_of cl))
          [ ( "int",
              Value.TInt,
              Array.init n (fun i ->
                  if i mod 5 = 0 then Value.VNull
                  else Value.VInt ((i * 37 mod 211) - 100)) );
            ("float", Value.TFloat, mixed_floats n);
            ( "date",
              Value.TDate,
              Array.init n (fun i ->
                  if i mod 9 = 0 then Value.VNull else Value.VDate (i * 3)) ) ]);
    tc "to_bigarray/to_legacy preserve" (fun () ->
        let vals = mixed_floats 64 in
        let c = Column.of_values Value.TFloat vals in
        let b = Column.to_bigarray c in
        let l = Column.to_legacy b in
        Alcotest.(check bool) "bigarray form" true (Column.is_bigarray b);
        Alcotest.(check bool) "legacy form" false (Column.is_bigarray l);
        Alcotest.(check bool)
          "values stable" true
          (values_of b = vals && values_of l = vals)) ]

let relation_tests =
  [ tc "schema & canonical" (fun () ->
        let r =
          rel [ "a"; "b" ] [ ints [| 2; 1 |]; strings [| "y"; "x" |] ]
        in
        Alcotest.(check int) "rows" 2 (Relation.n_rows r);
        Alcotest.(check (list string))
          "canonical sorted" [ "1|x"; "2|y" ] (Relation.canonical r));
    tc "rename" (fun () ->
        let r = rel [ "a" ] [ ints [| 1 |] ] in
        let r = Relation.rename r [| "z" |] in
        Alcotest.(check bool) "renamed" true (Relation.col_index r "z" = Some 0));
    tc "concat" (fun () ->
        let a = rel [ "x" ] [ ints [| 1 |] ] in
        let b = rel [ "x" ] [ ints [| 2 |] ] in
        Alcotest.(check int) "rows" 2 (Relation.n_rows (Relation.concat [ a; b ])))
  ]

let like_props =
  let naive_like = Sqldb.Eval.like_match in
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"compile_like agrees with like_match" ~count:500
         QCheck2.Gen.(
           pair
             (string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_bound 8))
             (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_bound 10)))
         (fun (pat, s) -> Sqldb.Eval.compile_like pat s = naive_like pat s)) ]

let suites =
  [ ("dates", date_tests @ date_props);
    ("bitset", bitset_tests @ bitset_props);
    ("column", column_tests @ column_props);
    ("bigarray", bigarray_tests);
    ("relation", relation_tests);
    ("like", like_props) ]
