(** Differential fault oracle: every workload and a TPC-H selection run
    under injected faults ({!Sqldb.Faults}) on every engine configuration,
    and each run must either produce exactly the fault-free answer or fail
    with a clean typed error — never crash the process, never return a
    silently wrong relation.

    The interpreter baseline is not fault-instrumented, so it provides the
    reference answer; [Pytond.run] exercises in-engine recovery (chunk retry
    in [Parallel], suppressed-retry in [Db.execute]) and [Pytond.run_auto]
    additionally exercises the interpreter fallback for faults that escape
    recovery. *)

open Helpers
module Faults = Sqldb.Faults

let seeds = [ 11; 23; 47 ]

let configs =
  [ (Pytond.Vectorized, 1, "vec@1"); (Pytond.Vectorized, 3, "vec@3");
    (Pytond.Compiled, 1, "comp@1"); (Pytond.Compiled, 3, "comp@3") ]

(* SUM over an empty selection is 0.0 in pandas but NULL in SQL (q19 at tiny
   scale factors selects nothing). *)
let norm rows = match rows with [ "NULL" ] -> [ "0.000" ] | rows -> rows

(* Run [source] against [db] under seed-armed faults on one configuration.
   Acceptable outcomes: the reference relation, or a typed [Pytond.Error].
   Anything else — an untyped exception, a mismatching relation — fails. *)
let oracle_one ~label ~db ~source ~reference ~seed (backend, threads, cfg) =
  Faults.arm ~seed ();
  Fun.protect ~finally:Faults.arm_from_env (fun () ->
      let tag = Printf.sprintf "%s %s seed=%d" label cfg seed in
      (* direct run: in-engine recovery only *)
      (match Pytond.run ~backend ~threads ~db ~source ~fname:"query" () with
      | r ->
        check_rows_close ~digits:3 (tag ^ " run")
          (norm (Sqldb.Relation.canonical ~digits:3 reference))
          (norm (Sqldb.Relation.canonical ~digits:3 r))
      | exception Pytond.Error _ -> ());
      (* run_auto: must always produce the reference (fallback rescues any
         escaped exec fault; translate errors cannot occur here) *)
      Faults.arm ~seed ();
      let a =
        Pytond.run_auto ~backend ~threads ~db ~source ~fname:"query" ()
      in
      check_rows_close ~digits:3 (tag ^ " run_auto")
        (norm (Sqldb.Relation.canonical ~digits:3 reference))
        (norm (Sqldb.Relation.canonical ~digits:3 a.Pytond.relation)))

let oracle ~label ~db ~source ~seed =
  Faults.disarm ();
  let reference = Pytond.run_python ~db ~source ~fname:"query" () in
  List.iter (oracle_one ~label ~db ~source ~reference ~seed) configs

let workload_oracle seed =
  tc (Printf.sprintf "workloads under faults, seed %d" seed) (fun () ->
      List.iter
        (fun (name, load, source) ->
          let db = Sqldb.Db.create () in
          load db;
          oracle ~label:name ~db ~source ~seed)
        Workloads.all)

let tpch_queries = [ "q1"; "q3"; "q4"; "q12"; "q16"; "q19" ]

let tpch_oracle seed =
  tc (Printf.sprintf "TPC-H under faults, seed %d" seed) (fun () ->
      let db = Tpch.Dbgen.make_db 0.005 in
      List.iter
        (fun q -> oracle ~label:q ~db ~source:(Tpch.Queries.find q) ~seed)
        tpch_queries)

(* The query cache must stand down while faults are armed — a cached result
   would mask the recovery paths under test — and serve correct results
   again once disarmed, even when faulty runs happened in between. *)
let cache_interaction_test =
  tc "query cache stands down under faults, recovers after" (fun () ->
      let saved_cache = Sqldb.Db.cache_enabled_now () in
      Fun.protect
        ~finally:(fun () ->
          Sqldb.Db.set_cache_enabled saved_cache;
          Faults.arm_from_env ())
        (fun () ->
          Sqldb.Db.set_cache_enabled true;
          Faults.disarm ();
          let db = Tpch.Dbgen.make_db 0.005 in
          let source = Tpch.Queries.find "q6" in
          let reference = Pytond.run ~db ~source ~fname:"query" () in
          List.iter
            (fun seed ->
              Faults.arm ~seed ();
              (* armed: executions bypass the cache entirely *)
              let before = (Sqldb.Db.cache_stats db).Sqldb.Db.misses in
              (match Pytond.run ~db ~source ~fname:"query" () with
              | r ->
                Alcotest.(check (list string))
                  (Printf.sprintf "armed result, seed %d" seed)
                  (Sqldb.Relation.canonical ~digits:3 reference)
                  (Sqldb.Relation.canonical ~digits:3 r)
              | exception Pytond.Error _ -> ());
              Alcotest.(check int)
                (Printf.sprintf "no cache traffic while armed, seed %d" seed)
                before
                ((Sqldb.Db.cache_stats db).Sqldb.Db.misses);
              Faults.disarm ();
              (* disarmed: cached execution returns the clean answer *)
              let r1 = Pytond.run ~db ~source ~fname:"query" () in
              let r2 = Pytond.run ~db ~source ~fname:"query" () in
              Alcotest.(check (list string))
                (Printf.sprintf "cached repeat after disarm, seed %d" seed)
                (Sqldb.Relation.canonical ~digits:3 r1)
                (Sqldb.Relation.canonical ~digits:3 r2))
            seeds))

(* Chunk-level recovery in isolation: an injected worker crash re-runs the
   chunk inline, so a fault-heavy parallel map still returns exactly the
   sequential answer in every dispatch mode. *)
let sum_chunks () =
  Sqldb.Parallel.map_chunks ~threads:4 1000 (fun s l ->
      let acc = ref 0 in
      for i = s to s + l - 1 do
        acc := !acc + i
      done;
      !acc)

let parallel_retry_test =
  tc "map_chunks recovers injected worker crashes in every mode" (fun () ->
      let expected = sum_chunks () in
      let saved_mode = Sqldb.Parallel.current_mode () in
      Fun.protect
        ~finally:(fun () ->
          Sqldb.Parallel.set_mode saved_mode;
          Faults.arm_from_env ())
        (fun () ->
          List.iter
            (fun mode ->
              Sqldb.Parallel.set_mode mode;
              List.iter
                (fun seed ->
                  Faults.arm ~seed ();
                  Alcotest.(check (list int))
                    (Printf.sprintf "seed %d" seed)
                    expected (sum_chunks ()))
                seeds)
            [ Sqldb.Parallel.Sequential_only; Sqldb.Parallel.Domains;
              Sqldb.Parallel.Simulated ]))

(* The registry itself: deterministic draws per seed, suppression masks
   firing, env round-trip. *)
let registry_tests =
  [ tc "draw sequence is deterministic per seed" (fun () ->
        let draw_seq seed =
          Faults.arm ~seed ();
          Fun.protect ~finally:Faults.arm_from_env (fun () ->
              List.init 64 (fun _ ->
                  Faults.fires Faults.Worker_crash ~site:"t"))
        in
        Alcotest.(check (list bool))
          "same seed, same draws" (draw_seq 11) (draw_seq 11);
        Alcotest.(check bool)
          "some draw fires under some seed" true
          (List.exists (fun s -> List.mem true (draw_seq s)) [ 11; 23; 47; 5; 7 ]));
    tc "suppression masks injection" (fun () ->
        Faults.arm ~seed:11 ();
        Fun.protect ~finally:Faults.arm_from_env (fun () ->
            Faults.with_suppressed (fun () ->
                for _ = 1 to 200 do
                  Faults.crash_point ~site:"t";
                  Faults.dict_corrupt_point ~site:"t"
                done)));
    tc "PYTOND_FAULTS round-trips through arm_from_env" (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Unix.putenv "PYTOND_FAULTS" "";
            Faults.arm_from_env ())
          (fun () ->
            Unix.putenv "PYTOND_FAULTS" "42";
            Faults.arm_from_env ();
            Alcotest.(check bool) "armed" true (Faults.armed ());
            Unix.putenv "PYTOND_FAULTS" "";
            Faults.arm_from_env ();
            Alcotest.(check bool) "disarmed" false (Faults.armed ()))) ]

let suites =
  [ ("faults-registry", registry_tests);
    ("faults-parallel", [ parallel_retry_test ]);
    ("faults-cache", [ cache_interaction_test ]);
    ( "faults-oracle",
      List.map workload_oracle seeds @ List.map tpch_oracle seeds ) ]
