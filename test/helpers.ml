(** Shared test utilities. *)

open Sqldb

let check_rel ?(digits = 4) msg (expected : Relation.t) (actual : Relation.t) =
  Alcotest.(check (list string))
    msg
    (Relation.canonical ~digits expected)
    (Relation.canonical ~digits actual)

(* Like [check_rel] on pre-canonicalized rows, but float cells may differ
   by one unit in the last rounded decimal plus a small relative term:
   parallel aggregation sums in chunk order, so the low bits of large
   float sums legitimately depend on the thread count. String cells must
   still match exactly, and any real defect (a lost or duplicated row)
   moves an aggregate by far more than the tolerance. *)
let check_rows_close ?(digits = 3) msg (expected : string list)
    (actual : string list) =
  let close a b =
    String.equal a b
    ||
    match (float_of_string_opt a, float_of_string_opt b) with
    | Some x, Some y ->
      Float.abs (x -. y)
      <= (1.6 *. (10. ** float_of_int (-digits)))
         +. (1e-6 *. Float.max (Float.abs x) (Float.abs y))
    | _ -> false
  in
  let row_close ra rb =
    let ca = String.split_on_char '|' ra in
    let cb = String.split_on_char '|' rb in
    List.length ca = List.length cb && List.for_all2 close ca cb
  in
  if
    not
      (List.length expected = List.length actual
      && List.for_all2 row_close expected actual)
  then (* re-raise through the exact check for a readable diff *)
    Alcotest.(check (list string)) msg expected actual

let rel names cols = Relation.create (Array.of_list names) (Array.of_list cols)

let ints = Column.of_ints
let floats = Column.of_floats
let strings = Column.of_strings
let bools = Column.of_bools
let dates l = Column.of_dates (Array.map Value.date_of_iso l)

(* A small orders/customers database reused across suites. *)
let mini_db () =
  let db = Db.create () in
  Db.load_table db "orders"
    ~cons:{ Catalog.no_constraints with primary_key = [ "o_id" ] }
    (rel [ "o_id"; "o_cust"; "o_total"; "o_date" ]
       [ ints [| 1; 2; 3; 4; 5 |];
         ints [| 10; 10; 20; 30; 20 |];
         floats [| 100.; 200.; 50.; 75.; 125. |];
         dates [| "1995-01-01"; "1995-06-15"; "1996-02-01"; "1994-12-31";
                  "1995-03-03" |] ]);
  Db.load_table db "cust"
    ~cons:{ Catalog.no_constraints with primary_key = [ "c_id" ] }
    (rel [ "c_id"; "c_name" ]
       [ ints [| 10; 20; 40 |]; strings [| "alice"; "bob"; "carol" |] ]);
  db

let run_all ?threads ?backend db sql = Db.execute ?threads ?backend db sql

(* execute on every backend and insist the results agree *)
let execute_everywhere ?(threads_list = [ 1; 3 ]) db sql : Relation.t =
  let reference = Db.execute ~backend:Db.Vectorized db sql in
  List.iter
    (fun backend ->
      List.iter
        (fun threads ->
          let r = Db.execute ~backend ~threads db sql in
          check_rel
            (Printf.sprintf "%s @%dt" (Db.backend_name backend) threads)
            reference r)
        threads_list)
    [ Db.Vectorized; Db.Compiled ];
  reference

let tc name f = Alcotest.test_case name `Quick f

(* substring search used by codegen tests *)
let contains_sub (sub : string) (s : string) : bool =
  let ls = String.length s and lsub = String.length sub in
  let rec at i =
    i + lsub <= ls && (String.equal (String.sub s i lsub) sub || at (i + 1))
  in
  lsub = 0 || at 0
