(** End-to-end pipeline tests: dataframe baseline, interpreter, translation
    to TondIR, and full Python→SQL→engine equivalence on the paper's
    workloads and TPC-H. *)

open Helpers
module Df = Dataframe.Df

(* ---------------- dataframe baseline ---------------------------------- *)

let df_tests =
  [ tc "merge with pandas suffixing" (fun () ->
        let a =
          Df.create [ ("k", ints [| 1; 2 |]); ("v", ints [| 10; 20 |]) ]
        in
        let b =
          Df.create [ ("k", ints [| 1; 1 |]); ("v", ints [| 7; 8 |]) ]
        in
        let j = Df.merge ~left_on:[ "k" ] ~right_on:[ "k" ] a b in
        Alcotest.(check (list string))
          "columns renamed" [ "k"; "v_x"; "v_y" ] (Df.columns j);
        Alcotest.(check int) "two matches" 2 (Df.n_rows j));
    tc "left merge yields nulls" (fun () ->
        let a = Df.create [ ("k", ints [| 1; 9 |]) ] in
        let b = Df.create [ ("k", ints [| 1 |]); ("w", ints [| 5 |]) ] in
        let j = Df.merge ~how:Df.Left ~left_on:[ "k" ] ~right_on:[ "k" ] a b in
        Alcotest.(check int) "rows" 2 (Df.n_rows j);
        Alcotest.(check bool) "null for unmatched" true
          (Sqldb.Column.has_nulls (Df.column j "w")));
    tc "groupby_agg" (fun () ->
        let d =
          Df.create
            [ ("g", strings [| "a"; "b"; "a" |]); ("x", ints [| 1; 2; 3 |]) ]
        in
        let r =
          Df.groupby_agg d ~by:[ "g" ]
            ~aggs:[ ("s", "x", Df.ASum); ("n", "x", Df.ACount) ]
        in
        check_rel "groups"
          (rel [ "g"; "s"; "n" ]
             [ strings [| "a"; "b" |]; ints [| 4; 2 |]; ints [| 2; 1 |] ])
          (Df.to_relation r));
    tc "pivot_table (paper §II-A example)" (fun () ->
        let d =
          Df.create
            [ ("a", strings [| "x"; "y"; "y"; "z"; "y"; "x"; "z" |]);
              ("b", strings [| "v1"; "v3"; "v1"; "v2"; "v3"; "v2"; "v2" |]);
              ("c", ints [| 10; 30; 60; 20; 40; 60; 50 |]) ]
        in
        let p = Df.pivot_table d ~index:"a" ~columns:"b" ~values:"c" ~aggfunc:Df.ASum in
        check_rel "pivot"
          (rel [ "a"; "v1"; "v2"; "v3" ]
             [ strings [| "x"; "y"; "z" |];
               floats [| 10.; 60.; 0. |];
               floats [| 60.; 0.; 70. |];
               floats [| 0.; 70.; 0. |] ])
          (Df.to_relation p));
    tc "sort/head/unique/isin" (fun () ->
        let d = Df.create [ ("x", ints [| 3; 1; 2; 1 |]) ] in
        let s = Df.sort_values d ~by:[ ("x", true) ] in
        Alcotest.(check int) "first" 1 (Sqldb.Column.int_at (Df.column s "x") 0);
        Alcotest.(check int) "unique" 3
          (Sqldb.Column.length (Df.Series.unique (Df.column d "x")));
        let m = Df.Series.isin (Df.column d "x") [ Sqldb.Value.VInt 1 ] in
        Alcotest.(check int) "isin count" 2
          (Array.fold_left (fun a b -> if b then a + 1 else a) 0 m)) ]

(* ---------------- interpreter ----------------------------------------- *)

let run_py db src = Pytond.run_python ~db ~source:src ~fname:"query" ()

let interp_tests =
  [ tc "straight-line pandas" (fun () ->
        let r =
          run_py (mini_db ())
            {|
@pytond()
def query(orders):
    o = orders[orders.o_total > 60.0]
    g = o.groupby(['o_cust']).agg(n=('o_id', 'count'))
    return g.sort_values(by='o_cust')
|}
        in
        check_rel "grouped"
          (rel [ "o_cust"; "n" ] [ ints [| 10; 20; 30 |]; ints [| 2; 1; 1 |] ])
          r);
    tc "np.where and masks" (fun () ->
        let r =
          run_py (mini_db ())
            {|
import numpy as np

@pytond()
def query(orders):
    o = orders.copy()
    o['big'] = np.where(o.o_total > 100.0, 1, 0)
    return o.big.sum()
|}
        in
        Alcotest.(check (list string)) "sum" [ "2" ] (Sqldb.Relation.canonical r));
    tc "lambda apply" (fun () ->
        let r =
          run_py (mini_db ())
            {|
@pytond()
def query(orders):
    s = orders.o_total.apply(lambda x: x * 2.0)
    return s.sum()
|}
        in
        Alcotest.(check (list string)) "doubled" [ "1100.0000" ]
          (Sqldb.Relation.canonical ~digits:4 r)) ]

(* ---------------- translation ----------------------------------------- *)

let translate_tests =
  [ tc "filter+merge matches paper Table V shape" (fun () ->
        let db = mini_db () in
        let c =
          Pytond.front ~db
            ~source:
              {|
@pytond()
def query(orders, cust):
    big = orders[orders.o_total > 100.0]
    j = big.merge(cust, left_on='o_cust', right_on='c_id')
    return j
|}
            ~fname:"query"
        in
        let text = Tondir.Ir.program_to_string c.Pytond.ir in
        Alcotest.(check bool) "filter rule present" true
          (contains_sub "(o_total > 100)" text);
        Alcotest.(check bool) "join equality present" true
          (contains_sub "(o_cust = c_id)" text));
    tc "validity of every TPC-H translation" (fun () ->
        let db = Tpch.Dbgen.make_db 0.001 in
        let tables = Sqldb.Catalog.names (Sqldb.Db.catalog db) in
        List.iter
          (fun (name, source) ->
            let c = Pytond.front ~db ~source ~fname:"query" in
            let errors =
              Tondir.Analysis.validate ~known_relations:tables c.Pytond.ir
            in
            Alcotest.(check (list string)) (name ^ " valid") [] errors)
          Tpch.Queries.all);
    tc "einsum covariance produces gram + reshape rules" (fun () ->
        let db = Sqldb.Db.create () in
        Workloads.load_covar db ~rows:10 ~cols:3 ~sparsity:1.0;
        let c =
          Pytond.front ~db ~source:Workloads.covar_dense_src ~fname:"query"
        in
        let text = Tondir.Ir.program_to_string c.Pytond.ir in
        Alcotest.(check bool) "sum-of-products" true
          (contains_sub "sum((a_c0 * b_c0))" text);
        Alcotest.(check bool) "values reshape" true (contains_sub "= [" text));
    tc "sparse einsum groups output indices" (fun () ->
        let db = Sqldb.Db.create () in
        Workloads.load_covar db ~rows:10 ~cols:3 ~sparsity:0.5;
        let c =
          Pytond.front ~db ~source:Workloads.covar_sparse_src ~fname:"query"
        in
        let text = Tondir.Ir.program_to_string c.Pytond.ir in
        Alcotest.(check bool) "grouped by j,k" true
          (contains_sub "group(x_j, x_k)" text)) ]

(* ---------------- end-to-end equivalence ------------------------------ *)

let tpch_sf = 0.005

let e2e_tpch =
  let db = lazy (Tpch.Dbgen.make_db tpch_sf) in
  List.map
    (fun (name, source) ->
      tc name (fun () ->
          let db = Lazy.force db in
          let base = Pytond.run_python ~db ~source ~fname:"query" () in
          List.iter
            (fun (level, backend, label) ->
              let r =
                Pytond.run ~level ~backend ~db ~source ~fname:"query" ()
              in
              check_rel ~digits:3 (name ^ " " ^ label) base r)
            [ (Pytond.O4, Pytond.Vectorized, "O4/vec");
              (Pytond.O4, Pytond.Compiled, "O4/comp");
              (Pytond.O0, Pytond.Compiled, "O0/comp") ]))
    (List.filter (fun (n, _) -> not (List.mem n [ "q17"; "q19" ])) Tpch.Queries.all)
  @ List.map
      (fun qname ->
        tc (qname ^ " (empty-sum tolerance)") (fun () ->
            (* scalar results: SUM over an empty selection is 0.0 in pandas
               but NULL in SQL; normalize before comparing *)
            let db = Lazy.force db in
            let source = Tpch.Queries.find qname in
            let base = Pytond.run_python ~db ~source ~fname:"query" () in
            let r = Pytond.run ~db ~source ~fname:"query" () in
            let norm rel =
              match Sqldb.Relation.canonical ~digits:3 rel with
              | [ "NULL" ] -> [ "0.000" ]
              | rows -> rows
            in
            Alcotest.(check (list string)) qname (norm base) (norm r)))
      [ "q17"; "q19" ]

let e2e_workloads =
  List.map
    (fun (name, load, source) ->
      tc name (fun () ->
          let db = Sqldb.Db.create () in
          load db;
          let base = Pytond.run_python ~db ~source ~fname:"query" () in
          List.iter
            (fun (backend, threads, label) ->
              let r =
                Pytond.run ~backend ~threads ~db ~source ~fname:"query" ()
              in
              check_rel ~digits:3 (name ^ " " ^ label) base r)
            [ (Pytond.Vectorized, 1, "vec");
              (Pytond.Compiled, 1, "comp");
              (Pytond.Compiled, 3, "comp@3t") ]))
    Workloads.all

let e2e_covar =
  [ tc "covariance dense matches numpy" (fun () ->
        let db = Sqldb.Db.create () in
        Workloads.load_covar db ~rows:500 ~cols:6 ~sparsity:1.0;
        let base =
          Pytond.run_python ~db ~source:Workloads.covar_dense_src ~fname:"query" ()
        in
        let r =
          Pytond.run ~db ~source:Workloads.covar_dense_src ~fname:"query" ()
        in
        check_rel ~digits:3 "dense" base r);
    tc "covariance sparse matches dense totals" (fun () ->
        let db = Sqldb.Db.create () in
        Workloads.load_covar db ~rows:500 ~cols:6 ~sparsity:0.3;
        let dense =
          Pytond.run ~db ~source:Workloads.covar_dense_src ~fname:"query" ()
        in
        let sparse =
          Pytond.run ~db ~source:Workloads.covar_sparse_src ~fname:"query" ()
        in
        (* compare as (j,k,v) triples: densify the dense output *)
        let total r from =
          let acc = ref 0. in
          for i = 0 to Sqldb.Relation.n_rows r - 1 do
            let row = Sqldb.Relation.row r i in
            Array.iteri
              (fun j v ->
                if j >= from then
                  acc := !acc +. (try Sqldb.Value.as_float v with _ -> 0.))
              row
          done;
          !acc
        in
        Alcotest.(check (float 1e-3)) "totals agree" (total dense 1)
          (total sparse 2)) ]

let e2e_lingo =
  [ tc "lingo backend runs TPC-H q6 but rejects uid workloads" (fun () ->
        let db = Tpch.Dbgen.make_db 0.002 in
        let r =
          Pytond.run ~backend:Pytond.Lingo ~db
            ~source:(Tpch.Queries.find "q6") ~fname:"query" ()
        in
        Alcotest.(check int) "one row" 1 (Sqldb.Relation.n_rows r);
        (* hybrid workloads need row_number() for to_numpy: lingo-sim fails *)
        let db2 = Sqldb.Db.create () in
        Workloads.load_hybrid ~rows:100 db2;
        Alcotest.(check bool) "raises" true
          (try
             ignore
               (Pytond.run ~backend:Pytond.Lingo ~db:db2
                  ~source:Workloads.hybrid_covar_src ~fname:"query" ());
             false
           with Pytond.Error e ->
             e.Pytond.Errors.stage = Pytond.Errors.Exec
             && e.Pytond.Errors.code = "backend")) ]

let suites =
  [ ("dataframe", df_tests);
    ("interp", interp_tests);
    ("translate", translate_tests);
    ("e2e-tpch", e2e_tpch);
    ("e2e-workloads", e2e_workloads);
    ("e2e-covar", e2e_covar);
    ("e2e-lingo", e2e_lingo) ]
